//! Hierarchical composition: instantiating one netlist inside another.
//!
//! Workload generators and the SPICE flattener build large circuits by
//! stamping *cells* (small netlists with ports) into a parent. Port nets
//! bind to caller-supplied nets, global nets unify by name, and internal
//! nets/devices get instance-prefixed fresh names.

use crate::error::NetlistError;
use crate::id::{DeviceId, NetId};
use crate::netlist::Netlist;

/// Mapping produced by [`instantiate`]: where each cell entity landed in
/// the parent netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstantiateReport {
    /// For each cell device (by index), the parent device id.
    pub devices: Vec<DeviceId>,
    /// For each cell net (by index), the parent net id.
    pub nets: Vec<NetId>,
}

/// Stamps `cell` into `target` as instance `prefix`, binding the cell's
/// ports (in order) to `bindings`.
///
/// * Cell *port* nets map to the corresponding entry of `bindings`.
/// * Cell *global* nets map to a same-named net in `target`, created and
///   marked global if absent (this is how every stamped inverter shares
///   one `vdd`).
/// * All other cell nets become fresh `"{prefix}.{name}"` nets.
/// * Devices become `"{prefix}.{name}"`.
///
/// # Errors
///
/// * [`NetlistError::PinCountMismatch`] if `bindings.len()` differs from
///   the cell's port count (reported with the instance name).
/// * Propagates type/name conflicts from the underlying builders.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::{instantiate, Netlist};
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// let mut inv = Netlist::new("inv");
/// let mos = inv.add_mos_types();
/// let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
/// inv.mark_port(a);
/// inv.mark_port(y);
/// inv.mark_global(vdd);
/// inv.mark_global(gnd);
/// inv.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// inv.add_device("mn", mos.nmos, &[a, gnd, y])?;
///
/// let mut chip = Netlist::new("chip");
/// let (i, o) = (chip.net("in"), chip.net("out"));
/// let report = instantiate(&mut chip, &inv, "u1", &[i, o])?;
/// assert_eq!(report.devices.len(), 2);
/// assert_eq!(chip.device_count(), 2);
/// assert!(chip.find_net("vdd").is_some());
/// # Ok(())
/// # }
/// ```
pub fn instantiate(
    target: &mut Netlist,
    cell: &Netlist,
    prefix: &str,
    bindings: &[NetId],
) -> Result<InstantiateReport, NetlistError> {
    if bindings.len() != cell.ports().len() {
        return Err(NetlistError::PinCountMismatch {
            device: prefix.to_string(),
            expected: cell.ports().len(),
            got: bindings.len(),
        });
    }
    // Map cell nets into the target.
    let mut nets = Vec::with_capacity(cell.net_count());
    for n in cell.net_ids() {
        let net = cell.net_ref(n);
        let mapped = if let Some(pos) = cell.ports().iter().position(|&p| p == n) {
            bindings[pos]
        } else if net.is_global() {
            let g = target.net(net.name());
            target.mark_global(g);
            g
        } else {
            target.net(format!("{prefix}.{}", net.name()))
        };
        nets.push(mapped);
    }
    // Copy devices, registering types on demand.
    let mut devices = Vec::with_capacity(cell.device_count());
    for d in cell.device_ids() {
        let dev = cell.device(d);
        let ty = target.add_type(cell.device_type(dev.type_id()).clone())?;
        let pins: Vec<NetId> = dev.pins().iter().map(|&n| nets[n.index()]).collect();
        let id = target.add_device(format!("{prefix}.{}", dev.name()), ty, &pins)?;
        devices.push(id);
    }
    Ok(InstantiateReport { devices, nets })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter_cell() -> Netlist {
        let mut inv = Netlist::new("inv");
        let mos = inv.add_mos_types();
        let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
        inv.mark_port(a);
        inv.mark_port(y);
        inv.mark_global(vdd);
        inv.mark_global(gnd);
        inv.add_device("mp", mos.pmos, &[a, vdd, y]).unwrap();
        inv.add_device("mn", mos.nmos, &[a, gnd, y]).unwrap();
        inv
    }

    #[test]
    fn two_instances_share_globals_but_not_internals() {
        let inv = inverter_cell();
        let mut chip = Netlist::new("chip");
        let (a, b, c) = (chip.net("a"), chip.net("b"), chip.net("c"));
        instantiate(&mut chip, &inv, "u1", &[a, b]).unwrap();
        instantiate(&mut chip, &inv, "u2", &[b, c]).unwrap();
        assert_eq!(chip.device_count(), 4);
        // a, b, c, vdd, gnd — globals unified.
        assert_eq!(chip.net_count(), 5);
        let vdd = chip.find_net("vdd").unwrap();
        assert!(chip.net_ref(vdd).is_global());
        assert_eq!(chip.net_ref(vdd).degree(), 2);
        chip.validate().unwrap();
    }

    #[test]
    fn internal_nets_are_prefixed() {
        let mut cell = inverter_cell();
        // Add an internal net to the cell.
        let mos = cell.add_mos_types();
        let (a, mid, gnd) = (cell.net("a"), cell.net("mid"), cell.net("gnd"));
        cell.add_device("mx", mos.nmos, &[a, mid, gnd]).unwrap();

        let mut chip = Netlist::new("chip");
        let (i, o) = (chip.net("in"), chip.net("out"));
        instantiate(&mut chip, &cell, "u7", &[i, o]).unwrap();
        assert!(chip.find_net("u7.mid").is_some());
        assert!(chip.find_net("mid").is_none());
        assert!(chip.find_device("u7.mx").is_some());
    }

    #[test]
    fn binding_count_checked() {
        let inv = inverter_cell();
        let mut chip = Netlist::new("chip");
        let a = chip.net("a");
        let err = instantiate(&mut chip, &inv, "u1", &[a]).unwrap_err();
        assert!(matches!(err, NetlistError::PinCountMismatch { .. }));
    }

    #[test]
    fn report_maps_cell_entities() {
        let inv = inverter_cell();
        let mut chip = Netlist::new("chip");
        let (a, b) = (chip.net("a"), chip.net("b"));
        let rep = instantiate(&mut chip, &inv, "u1", &[a, b]).unwrap();
        // Cell net 0 is port `a` -> bound to chip `a`.
        assert_eq!(rep.nets[0], a);
        // Devices map in declaration order.
        assert_eq!(chip.device(rep.devices[0]).name(), "u1.mp");
        assert_eq!(chip.device_type_of(rep.devices[1]).name(), "nmos");
    }

    #[test]
    fn duplicate_instance_prefix_rejected() {
        let inv = inverter_cell();
        let mut chip = Netlist::new("chip");
        let (a, b) = (chip.net("a"), chip.net("b"));
        instantiate(&mut chip, &inv, "u1", &[a, b]).unwrap();
        let err = instantiate(&mut chip, &inv, "u1", &[a, b]).unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateDevice { .. }));
    }
}
