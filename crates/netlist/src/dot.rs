//! Graphviz (DOT) export of the bipartite circuit graph.
//!
//! Devices render as boxes, nets as ellipses (global nets doubled,
//! ports bold), and each pin becomes an edge labeled with its terminal
//! name — the exact picture of the paper's Fig. 2.

use std::fmt::Write as _;

use crate::netlist::Netlist;

/// Renders `netlist` as a Graphviz `graph` document.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::{to_dot, Netlist};
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// let mut nl = Netlist::new("inv");
/// let mos = nl.add_mos_types();
/// let (a, y, gnd) = (nl.net("a"), nl.net("y"), nl.net("gnd"));
/// nl.mark_global(gnd);
/// nl.add_device("mn", mos.nmos, &[a, gnd, y])?;
/// let dot = to_dot(&nl);
/// assert!(dot.starts_with("graph \"inv\""));
/// assert!(dot.contains("shape=box"));
/// assert!(dot.contains("label=\"g\""));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", escape(netlist.name()));
    let _ = writeln!(out, "  layout=neato; overlap=false; splines=true;");
    for d in netlist.device_ids() {
        let dev = netlist.device(d);
        let ty = netlist.device_type_of(d);
        let _ = writeln!(
            out,
            "  \"d{}\" [shape=box, label=\"{}\\n{}\"];",
            d.index(),
            escape(dev.name()),
            escape(ty.name())
        );
    }
    for n in netlist.net_ids() {
        let net = netlist.net_ref(n);
        let mut attrs = String::from("shape=ellipse");
        if net.is_global() {
            attrs.push_str(", peripheries=2");
        }
        if net.is_port() {
            attrs.push_str(", style=bold");
        }
        let _ = writeln!(
            out,
            "  \"n{}\" [{attrs}, label=\"{}\"];",
            n.index(),
            escape(net.name())
        );
    }
    for d in netlist.device_ids() {
        let dev = netlist.device(d);
        let ty = netlist.device_type_of(d);
        for (i, &n) in dev.pins().iter().enumerate() {
            let _ = writeln!(
                out,
                "  \"d{}\" -- \"n{}\" [label=\"{}\"];",
                d.index(),
                n.index(),
                escape(ty.terminal(i).name())
            );
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_vertices_and_edges() {
        let mut nl = Netlist::new("x");
        let mos = nl.add_mos_types();
        let (a, b, c) = (nl.net("a"), nl.net("b"), nl.net("c"));
        nl.mark_port(a);
        nl.mark_global(c);
        nl.add_device("m1", mos.nmos, &[a, b, c]).unwrap();
        let dot = to_dot(&nl);
        assert_eq!(dot.matches("shape=box").count(), 1);
        assert_eq!(dot.matches("shape=ellipse").count(), 3);
        assert_eq!(dot.matches(" -- ").count(), 3);
        assert!(dot.contains("peripheries=2")); // global
        assert!(dot.contains("style=bold")); // port
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn names_are_escaped() {
        let mut nl = Netlist::new("we\"ird");
        nl.net("a\"b");
        let dot = to_dot(&nl);
        assert!(dot.contains("we\\\"ird"));
        assert!(dot.contains("a\\\"b"));
    }
}
