//! [`CompiledCircuit`]: an owned, immutable CSR snapshot of a
//! [`Netlist`].
//!
//! Every hot loop in the workspace — Gemini refinement, Phase I
//! relabeling, Phase II spreading, extraction — walks the bipartite
//! device/net graph. Compiling the netlist once into flat
//! `row_offsets`/`neighbor`/`multiplicity` arrays (both directions),
//! with initial labels, degrees, and global/port flags precomputed,
//! makes those loops touch nothing but dense arrays, and the owned
//! representation is `Arc`-shareable across patterns, worker threads,
//! and extraction passes.
//!
//! Compilation happens in one pass over the netlist and never mutates:
//! a `CompiledCircuit` is a snapshot. Rebuild it when the netlist
//! changes (the extractor does so only after a pass actually replaced
//! devices).
//!
//! Invariants (checked by the equivalence test suite):
//!
//! * `dev_pin_start.len() == device_count + 1`, and the slice
//!   `[dev_pin_start[d], dev_pin_start[d+1])` of `dev_pin_net` /
//!   `dev_pin_mult` lists device `d`'s pins in terminal order;
//! * symmetrically for nets, in pin-insertion order;
//! * `dev_init[d]` is the hash of the device's type name;
//!   `net_init[n]` is the degree hash, or the fixed name-derived label
//!   for globals;
//! * class multipliers are odd, so weighted contribution sums are
//!   invariant under within-class pin swaps.

use std::sync::Arc;

use crate::hashing;
use crate::id::{DeviceId, NetId};
use crate::netlist::Netlist;

/// The neighbor-contribution accumulator returned by the relabeling
/// helpers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Contribs {
    /// Wrapping sum of `class_multiplier × neighbor_label` over the
    /// neighbors whose labels were supplied.
    pub sum: u64,
    /// Number of neighbors whose labels were supplied.
    pub used: usize,
    /// Number of neighbors skipped (callback returned `None`).
    pub skipped: usize,
}

/// Borrowed view of every field of a [`CompiledCircuit`], in
/// declaration order. Used by the artifact codec to serialize the
/// snapshot without exposing the fields publicly.
pub(crate) struct RawPartsRef<'a> {
    pub dev_pin_start: &'a [u32],
    pub dev_pin_net: &'a [NetId],
    pub dev_pin_mult: &'a [u64],
    pub net_pin_start: &'a [u32],
    pub net_pin_dev: &'a [DeviceId],
    pub net_pin_mult: &'a [u64],
    pub dev_init: &'a [u64],
    pub net_init: &'a [u64],
    pub dev_type: &'a [u32],
    pub type_names: &'a [String],
    pub net_global: &'a [bool],
    pub net_port: &'a [bool],
    pub globals: &'a [(String, NetId)],
    pub ports: &'a [NetId],
}

/// Owned counterpart of [`RawPartsRef`], consumed by
/// [`CompiledCircuit::from_raw_parts`].
pub(crate) struct RawParts {
    pub dev_pin_start: Vec<u32>,
    pub dev_pin_net: Vec<NetId>,
    pub dev_pin_mult: Vec<u64>,
    pub net_pin_start: Vec<u32>,
    pub net_pin_dev: Vec<DeviceId>,
    pub net_pin_mult: Vec<u64>,
    pub dev_init: Vec<u64>,
    pub net_init: Vec<u64>,
    pub dev_type: Vec<u32>,
    pub type_names: Vec<String>,
    pub net_global: Vec<bool>,
    pub net_port: Vec<bool>,
    pub globals: Vec<(String, NetId)>,
    pub ports: Vec<NetId>,
}

/// An owned, immutable, query-optimized bipartite snapshot of a
/// netlist.
///
/// Unlike [`CircuitGraph`](crate::CircuitGraph) (now a thin borrowing
/// shim over this type), a `CompiledCircuit` does not borrow the
/// netlist: wrap it in an [`Arc`] and share it across threads and
/// repeated searches.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::{CompiledCircuit, Netlist};
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// let mut nl = Netlist::new("inv");
/// let mos = nl.add_mos_types();
/// let (a, y, vdd, gnd) = (nl.net("a"), nl.net("y"), nl.net("vdd"), nl.net("gnd"));
/// nl.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// nl.add_device("mn", mos.nmos, &[a, gnd, y])?;
/// let g = std::sync::Arc::new(CompiledCircuit::compile(&nl));
/// assert_eq!(g.device_count(), 2);
/// assert_eq!(g.net_degree(y), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledCircuit {
    // Device -> net CSR.
    dev_pin_start: Vec<u32>,
    dev_pin_net: Vec<NetId>,
    dev_pin_mult: Vec<u64>,
    // Net -> device CSR.
    net_pin_start: Vec<u32>,
    net_pin_dev: Vec<DeviceId>,
    net_pin_mult: Vec<u64>,
    // Precomputed labeling material.
    dev_init: Vec<u64>,
    net_init: Vec<u64>,
    // Interned device-type labels: `dev_type[d]` indexes `type_names`.
    dev_type: Vec<u32>,
    type_names: Vec<String>,
    // Net flags.
    net_global: Vec<bool>,
    net_port: Vec<bool>,
    // Global nets as (name, id), sorted by name for binary search.
    globals: Vec<(String, NetId)>,
    // Ports in declaration order (the netlist's port contract).
    ports: Vec<NetId>,
}

impl CompiledCircuit {
    /// Compiles `netlist` into its CSR snapshot in one pass.
    pub fn compile(netlist: &Netlist) -> Self {
        let nd = netlist.device_count();
        let nn = netlist.net_count();

        // Intern device types once; per-device work is then index math.
        let type_names: Vec<String> = netlist
            .device_types()
            .iter()
            .map(|t| t.name().to_string())
            .collect();
        let type_inits: Vec<u64> = netlist
            .device_types()
            .iter()
            .map(|t| t.initial_label())
            .collect();

        let mut dev_pin_start = Vec::with_capacity(nd + 1);
        let mut dev_pin_net = Vec::with_capacity(netlist.pin_count());
        let mut dev_pin_mult = Vec::with_capacity(netlist.pin_count());
        let mut dev_type = Vec::with_capacity(nd);
        let mut dev_init = Vec::with_capacity(nd);
        dev_pin_start.push(0);
        for d in netlist.device_ids() {
            let dev = netlist.device(d);
            let ty = netlist.device_type_of(d);
            for (i, &n) in dev.pins().iter().enumerate() {
                dev_pin_net.push(n);
                dev_pin_mult.push(ty.class_multiplier(i));
            }
            dev_pin_start.push(dev_pin_net.len() as u32);
            dev_type.push(dev.type_id().index() as u32);
            dev_init.push(type_inits[dev.type_id().index()]);
        }

        let mut net_pin_start = Vec::with_capacity(nn + 1);
        let mut net_pin_dev = Vec::with_capacity(netlist.pin_count());
        let mut net_pin_mult = Vec::with_capacity(netlist.pin_count());
        let mut net_init = Vec::with_capacity(nn);
        let mut net_global = Vec::with_capacity(nn);
        let mut net_port = Vec::with_capacity(nn);
        let mut globals: Vec<(String, NetId)> = Vec::new();
        net_pin_start.push(0);
        for n in netlist.net_ids() {
            let net = netlist.net_ref(n);
            for pin in net.pins() {
                let ty = netlist.device_type_of(pin.device);
                net_pin_dev.push(pin.device);
                net_pin_mult.push(ty.class_multiplier(pin.terminal as usize));
            }
            net_pin_start.push(net_pin_dev.len() as u32);
            if net.is_global() {
                net_init.push(hashing::global_net_label(net.name()));
                globals.push((net.name().to_string(), n));
            } else {
                net_init.push(hashing::net_degree_label(net.degree()));
            }
            net_global.push(net.is_global());
            net_port.push(net.is_port());
        }
        globals.sort_by(|a, b| a.0.cmp(&b.0));

        Self {
            dev_pin_start,
            dev_pin_net,
            dev_pin_mult,
            net_pin_start,
            net_pin_dev,
            net_pin_mult,
            dev_init,
            net_init,
            dev_type,
            type_names,
            net_global,
            net_port,
            globals,
            ports: netlist.ports().to_vec(),
        }
    }

    /// Compiles straight into an [`Arc`] for sharing.
    pub fn compile_shared(netlist: &Netlist) -> Arc<Self> {
        Arc::new(Self::compile(netlist))
    }

    /// Borrowed view of every field, for the artifact codec.
    pub(crate) fn raw_parts(&self) -> RawPartsRef<'_> {
        RawPartsRef {
            dev_pin_start: &self.dev_pin_start,
            dev_pin_net: &self.dev_pin_net,
            dev_pin_mult: &self.dev_pin_mult,
            net_pin_start: &self.net_pin_start,
            net_pin_dev: &self.net_pin_dev,
            net_pin_mult: &self.net_pin_mult,
            dev_init: &self.dev_init,
            net_init: &self.net_init,
            dev_type: &self.dev_type,
            type_names: &self.type_names,
            net_global: &self.net_global,
            net_port: &self.net_port,
            globals: &self.globals,
            ports: &self.ports,
        }
    }

    /// Reassembles a snapshot from deserialized parts, re-checking every
    /// structural invariant the compiler guarantees: CSR offset shape,
    /// index bounds, mirror consistency of the two pin directions, odd
    /// class multipliers, label material recomputed from names and
    /// degrees, and the sorted global directory. An artifact that passes
    /// is indistinguishable from a fresh [`compile`](Self::compile) of
    /// the same netlist.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated invariant.
    pub(crate) fn from_raw_parts(p: RawParts) -> Result<Self, String> {
        let nd = p.dev_init.len();
        let nn = p.net_init.len();
        let np = p.dev_pin_net.len();

        check_csr("device", &p.dev_pin_start, nd, np)?;
        check_csr("net", &p.net_pin_start, nn, p.net_pin_dev.len())?;
        if p.dev_pin_mult.len() != np || p.net_pin_mult.len() != p.net_pin_dev.len() {
            return Err("multiplicity array length mismatch".into());
        }
        if p.net_pin_dev.len() != np {
            return Err("pin count differs between CSR directions".into());
        }
        if p.dev_type.len() != nd {
            return Err("dev_type length mismatch".into());
        }
        if p.net_global.len() != nn || p.net_port.len() != nn {
            return Err("net flag array length mismatch".into());
        }
        for &n in &p.dev_pin_net {
            if n.index() >= nn {
                return Err(format!("pin references net {} out of range", n.raw()));
            }
        }
        for &d in &p.net_pin_dev {
            if d.index() >= nd {
                return Err(format!("pin references device {} out of range", d.raw()));
            }
        }
        for &t in &p.dev_type {
            if t as usize >= p.type_names.len() {
                return Err(format!("device type index {t} out of range"));
            }
        }
        for &m in p.dev_pin_mult.iter().chain(&p.net_pin_mult) {
            if m & 1 == 0 {
                return Err("even class multiplier".into());
            }
        }

        // The two CSR directions must describe the same pin multiset.
        let mut fwd: Vec<(u32, u32, u64)> = Vec::with_capacity(np);
        for d in 0..nd {
            let (lo, hi) = (p.dev_pin_start[d] as usize, p.dev_pin_start[d + 1] as usize);
            for i in lo..hi {
                fwd.push((d as u32, p.dev_pin_net[i].raw(), p.dev_pin_mult[i]));
            }
        }
        let mut rev: Vec<(u32, u32, u64)> = Vec::with_capacity(np);
        for n in 0..nn {
            let (lo, hi) = (p.net_pin_start[n] as usize, p.net_pin_start[n + 1] as usize);
            for i in lo..hi {
                rev.push((p.net_pin_dev[i].raw(), n as u32, p.net_pin_mult[i]));
            }
        }
        fwd.sort_unstable();
        rev.sort_unstable();
        if fwd != rev {
            return Err("CSR directions disagree on the pin multiset".into());
        }

        // Label material must match what compile() derives from names
        // and degrees.
        let type_inits: Vec<u64> = p
            .type_names
            .iter()
            .map(|name| hashing::mix(hashing::fnv1a("type:") ^ hashing::fnv1a(name)))
            .collect();
        for d in 0..nd {
            if p.dev_init[d] != type_inits[p.dev_type[d] as usize] {
                return Err(format!("device {d} initial label mismatch"));
            }
        }

        // Global directory: sorted, deduplicated, flags consistent.
        for w in p.globals.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err("global directory not strictly sorted by name".into());
            }
        }
        for (name, n) in &p.globals {
            if n.index() >= nn || !p.net_global[n.index()] {
                return Err(format!("global `{name}` not flagged global"));
            }
        }
        if p.globals.len() != p.net_global.iter().filter(|&&g| g).count() {
            return Err("global flag count disagrees with the directory".into());
        }
        let mut global_name = vec![None; nn];
        for (name, n) in &p.globals {
            global_name[n.index()] = Some(name.as_str());
        }
        for (n, name) in global_name.iter().enumerate() {
            let degree = (p.net_pin_start[n + 1] - p.net_pin_start[n]) as usize;
            let expect = match name {
                Some(name) => hashing::global_net_label(name),
                None => hashing::net_degree_label(degree),
            };
            if p.net_init[n] != expect {
                return Err(format!("net {n} initial label mismatch"));
            }
        }
        for &n in &p.ports {
            if n.index() >= nn || !p.net_port[n.index()] {
                return Err(format!("port net {} not flagged port", n.raw()));
            }
        }
        if p.ports.len() != p.net_port.iter().filter(|&&f| f).count() {
            return Err("port flag count disagrees with the port list".into());
        }

        Ok(Self {
            dev_pin_start: p.dev_pin_start,
            dev_pin_net: p.dev_pin_net,
            dev_pin_mult: p.dev_pin_mult,
            net_pin_start: p.net_pin_start,
            net_pin_dev: p.net_pin_dev,
            net_pin_mult: p.net_pin_mult,
            dev_init: p.dev_init,
            net_init: p.net_init,
            dev_type: p.dev_type,
            type_names: p.type_names,
            net_global: p.net_global,
            net_port: p.net_port,
            globals: p.globals,
            ports: p.ports,
        })
    }

    /// Number of device vertices.
    #[inline]
    pub fn device_count(&self) -> usize {
        self.dev_init.len()
    }

    /// Number of net vertices.
    #[inline]
    pub fn net_count(&self) -> usize {
        self.net_init.len()
    }

    /// Total pin (edge) count.
    #[inline]
    pub fn pin_count(&self) -> usize {
        self.dev_pin_net.len()
    }

    /// Whether net `n` is a special global signal.
    #[inline]
    pub fn is_global(&self, n: NetId) -> bool {
        self.net_global[n.index()]
    }

    /// Whether net `n` is an external port.
    #[inline]
    pub fn is_port(&self, n: NetId) -> bool {
        self.net_port[n.index()]
    }

    /// The ports, in declaration order.
    #[inline]
    pub fn ports(&self) -> &[NetId] {
        &self.ports
    }

    /// The global nets as `(name, id)`, sorted by name.
    #[inline]
    pub fn globals(&self) -> &[(String, NetId)] {
        &self.globals
    }

    /// Looks up a global net by name.
    pub fn find_global(&self, name: &str) -> Option<NetId> {
        self.globals
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.globals[i].1)
    }

    /// The interned device-type names, indexed by
    /// [`device_type_index`](Self::device_type_index).
    #[inline]
    pub fn type_names(&self) -> &[String] {
        &self.type_names
    }

    /// Index of device `d`'s type into [`type_names`](Self::type_names).
    #[inline]
    pub fn device_type_index(&self, d: DeviceId) -> u32 {
        self.dev_type[d.index()]
    }

    /// Name of device `d`'s type.
    #[inline]
    pub fn device_type_name(&self, d: DeviceId) -> &str {
        &self.type_names[self.dev_type[d.index()] as usize]
    }

    /// Degree of device `d` (number of terminals).
    #[inline]
    pub fn device_degree(&self, d: DeviceId) -> usize {
        (self.dev_pin_start[d.index() + 1] - self.dev_pin_start[d.index()]) as usize
    }

    /// Degree of net `n` (number of pins).
    #[inline]
    pub fn net_degree(&self, n: NetId) -> usize {
        (self.net_pin_start[n.index() + 1] - self.net_pin_start[n.index()]) as usize
    }

    /// The nets adjacent to device `d`, each with the class multiplier
    /// of the connecting terminal.
    #[inline]
    pub fn device_neighbors(
        &self,
        d: DeviceId,
    ) -> impl ExactSizeIterator<Item = (NetId, u64)> + '_ {
        let lo = self.dev_pin_start[d.index()] as usize;
        let hi = self.dev_pin_start[d.index() + 1] as usize;
        self.dev_pin_net[lo..hi]
            .iter()
            .copied()
            .zip(self.dev_pin_mult[lo..hi].iter().copied())
    }

    /// The devices adjacent to net `n`, each with the class multiplier
    /// of the connecting terminal.
    #[inline]
    pub fn net_neighbors(&self, n: NetId) -> impl ExactSizeIterator<Item = (DeviceId, u64)> + '_ {
        let lo = self.net_pin_start[n.index()] as usize;
        let hi = self.net_pin_start[n.index() + 1] as usize;
        self.net_pin_dev[lo..hi]
            .iter()
            .copied()
            .zip(self.net_pin_mult[lo..hi].iter().copied())
    }

    /// Initial (vertex-invariant) label of device `d`: a hash of its
    /// type name.
    #[inline]
    pub fn initial_device_label(&self, d: DeviceId) -> u64 {
        self.dev_init[d.index()]
    }

    /// Initial label of net `n`: its degree hash, or the fixed global
    /// label for special nets.
    #[inline]
    pub fn initial_net_label(&self, n: NetId) -> u64 {
        self.net_init[n.index()]
    }

    /// Accumulates the weighted label contributions of the nets around
    /// device `d`. `label_of` returns `None` to skip a neighbor
    /// (corrupt in Phase I, suspect in Phase II).
    #[inline]
    pub fn device_contribs(
        &self,
        d: DeviceId,
        mut label_of: impl FnMut(NetId) -> Option<u64>,
    ) -> Contribs {
        let mut c = Contribs::default();
        for (n, mult) in self.device_neighbors(d) {
            match label_of(n) {
                Some(l) => {
                    c.sum = c.sum.wrapping_add(mult.wrapping_mul(l));
                    c.used += 1;
                }
                None => c.skipped += 1,
            }
        }
        c
    }

    /// Accumulates the weighted label contributions of the devices
    /// around net `n`; see [`CompiledCircuit::device_contribs`].
    #[inline]
    pub fn net_contribs(
        &self,
        n: NetId,
        mut label_of: impl FnMut(DeviceId) -> Option<u64>,
    ) -> Contribs {
        let mut c = Contribs::default();
        for (d, mult) in self.net_neighbors(n) {
            match label_of(d) {
                Some(l) => {
                    c.sum = c.sum.wrapping_add(mult.wrapping_mul(l));
                    c.used += 1;
                }
                None => c.skipped += 1,
            }
        }
        c
    }
}

/// Checks that `start` is a well-formed CSR offset array for `rows`
/// rows over `entries` entries: length `rows + 1`, starts at 0,
/// monotone, and ends at `entries`.
fn check_csr(what: &str, start: &[u32], rows: usize, entries: usize) -> Result<(), String> {
    if start.len() != rows + 1 {
        return Err(format!("{what} CSR offset length mismatch"));
    }
    if start[0] != 0 || start[rows] as usize != entries {
        return Err(format!("{what} CSR offsets do not span the entry array"));
    }
    for w in start.windows(2) {
        if w[0] > w[1] {
            return Err(format!("{what} CSR offsets not monotone"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::MosTypes;

    fn inverter(globals: bool) -> Netlist {
        let mut nl = Netlist::new("inv");
        let MosTypes { nmos, pmos } = nl.add_mos_types();
        let (a, y, vdd, gnd) = (nl.net("a"), nl.net("y"), nl.net("vdd"), nl.net("gnd"));
        if globals {
            nl.mark_global(vdd);
            nl.mark_global(gnd);
        }
        nl.mark_port(a);
        nl.mark_port(y);
        nl.add_device("mp", pmos, &[a, vdd, y]).unwrap();
        nl.add_device("mn", nmos, &[a, gnd, y]).unwrap();
        nl
    }

    #[test]
    fn compiled_is_owned_and_shareable() {
        let g = {
            let nl = inverter(true);
            CompiledCircuit::compile_shared(&nl)
        };
        // The netlist is gone; the snapshot still answers queries.
        assert_eq!(g.device_count(), 2);
        assert_eq!(g.net_count(), 4);
        let g2 = Arc::clone(&g);
        std::thread::spawn(move || assert_eq!(g2.net_count(), 4))
            .join()
            .unwrap();
    }

    #[test]
    fn type_interning_and_degrees() {
        let nl = inverter(false);
        let g = CompiledCircuit::compile(&nl);
        let mp = nl.find_device("mp").unwrap();
        let mn = nl.find_device("mn").unwrap();
        assert_eq!(g.device_type_name(mp), "pmos");
        assert_eq!(g.device_type_name(mn), "nmos");
        assert_ne!(g.device_type_index(mp), g.device_type_index(mn));
        assert_eq!(g.device_degree(mp), 3);
        assert_eq!(g.net_degree(nl.find_net("a").unwrap()), 2);
        assert_eq!(g.pin_count(), 6);
    }

    #[test]
    fn global_and_port_flags_survive_compilation() {
        let nl = inverter(true);
        let g = CompiledCircuit::compile(&nl);
        let (a, vdd) = (nl.find_net("a").unwrap(), nl.find_net("vdd").unwrap());
        assert!(g.is_port(a) && !g.is_global(a));
        assert!(g.is_global(vdd) && !g.is_port(vdd));
        assert_eq!(g.find_global("vdd"), Some(vdd));
        assert_eq!(g.find_global("a"), None);
        assert_eq!(g.ports(), nl.ports());
        assert_eq!(g.globals().len(), 2);
    }

    #[test]
    fn initial_labels_match_hashing_contract() {
        let nl = inverter(true);
        let g = CompiledCircuit::compile(&nl);
        let vdd = nl.find_net("vdd").unwrap();
        let a = nl.find_net("a").unwrap();
        assert_eq!(g.initial_net_label(vdd), hashing::global_net_label("vdd"));
        assert_eq!(g.initial_net_label(a), hashing::net_degree_label(2));
        let mp = nl.find_device("mp").unwrap();
        assert_eq!(
            g.initial_device_label(mp),
            nl.device_type_of(mp).initial_label()
        );
    }
}
