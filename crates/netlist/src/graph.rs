//! [`CircuitGraph`]: a thin borrowing shim over [`CompiledCircuit`].
//!
//! Historically this type owned the CSR arrays itself; the flat storage
//! now lives in the owned, `Arc`-shareable [`CompiledCircuit`] so that
//! one compilation can be reused across patterns, worker threads, and
//! extraction passes. `CircuitGraph` keeps the old borrowed API —
//! netlist access plus label/adjacency queries — so legacy call sites
//! migrate mechanically.
//!
//! Representing nets as first-class vertices (rather than cliques of
//! device-device edges) is the paper's §II modeling decision: it reduces
//! `N(N−1)/2` edges to `N` and exposes net structure to partitioning.

use std::sync::Arc;

use crate::compiled::CompiledCircuit;
use crate::id::{DeviceId, NetId};
use crate::netlist::Netlist;

pub use crate::compiled::Contribs;

/// A borrowed, query-optimized bipartite view of a netlist.
///
/// This is a compatibility shim: the CSR arrays live in an
/// [`Arc<CompiledCircuit>`] reachable via
/// [`compiled`](CircuitGraph::compiled), and all queries delegate to
/// it.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::{CircuitGraph, Netlist};
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// let mut nl = Netlist::new("inv");
/// let mos = nl.add_mos_types();
/// let (a, y, vdd, gnd) = (nl.net("a"), nl.net("y"), nl.net("vdd"), nl.net("gnd"));
/// nl.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// nl.add_device("mn", mos.nmos, &[a, gnd, y])?;
/// let g = CircuitGraph::new(&nl);
/// assert_eq!(g.device_count(), 2);
/// assert_eq!(g.net_neighbors(y).count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CircuitGraph<'a> {
    netlist: &'a Netlist,
    compiled: Arc<CompiledCircuit>,
}

impl<'a> CircuitGraph<'a> {
    /// Builds the CSR view of `netlist` by compiling it.
    pub fn new(netlist: &'a Netlist) -> Self {
        Self {
            netlist,
            compiled: Arc::new(CompiledCircuit::compile(netlist)),
        }
    }

    /// Wraps an already-compiled snapshot of `netlist`, skipping
    /// recompilation. The caller must ensure `compiled` was built from
    /// this exact netlist.
    pub fn from_compiled(netlist: &'a Netlist, compiled: Arc<CompiledCircuit>) -> Self {
        debug_assert_eq!(compiled.device_count(), netlist.device_count());
        debug_assert_eq!(compiled.net_count(), netlist.net_count());
        Self { netlist, compiled }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// The shared compiled snapshot backing this view.
    pub fn compiled(&self) -> &Arc<CompiledCircuit> {
        &self.compiled
    }

    /// Number of device vertices.
    #[inline]
    pub fn device_count(&self) -> usize {
        self.compiled.device_count()
    }

    /// Number of net vertices.
    #[inline]
    pub fn net_count(&self) -> usize {
        self.compiled.net_count()
    }

    /// Whether net `n` is a special global signal.
    #[inline]
    pub fn is_global(&self, n: NetId) -> bool {
        self.compiled.is_global(n)
    }

    /// The nets adjacent to device `d`, each with the class multiplier of
    /// the connecting terminal.
    #[inline]
    pub fn device_neighbors(
        &self,
        d: DeviceId,
    ) -> impl ExactSizeIterator<Item = (NetId, u64)> + '_ {
        self.compiled.device_neighbors(d)
    }

    /// The devices adjacent to net `n`, each with the class multiplier of
    /// the connecting terminal.
    #[inline]
    pub fn net_neighbors(&self, n: NetId) -> impl ExactSizeIterator<Item = (DeviceId, u64)> + '_ {
        self.compiled.net_neighbors(n)
    }

    /// Degree of net `n` (number of pins).
    #[inline]
    pub fn net_degree(&self, n: NetId) -> usize {
        self.compiled.net_degree(n)
    }

    /// Initial (vertex-invariant) label of device `d`: a hash of its type
    /// name.
    #[inline]
    pub fn initial_device_label(&self, d: DeviceId) -> u64 {
        self.compiled.initial_device_label(d)
    }

    /// Initial label of net `n`: its degree hash, or the fixed global
    /// label for special nets.
    #[inline]
    pub fn initial_net_label(&self, n: NetId) -> u64 {
        self.compiled.initial_net_label(n)
    }

    /// Accumulates the weighted label contributions of the nets around
    /// device `d`. `label_of` returns `None` to skip a neighbor (corrupt
    /// in Phase I, suspect in Phase II).
    #[inline]
    pub fn device_contribs(
        &self,
        d: DeviceId,
        label_of: impl FnMut(NetId) -> Option<u64>,
    ) -> Contribs {
        self.compiled.device_contribs(d, label_of)
    }

    /// Accumulates the weighted label contributions of the devices around
    /// net `n`; see [`CircuitGraph::device_contribs`].
    #[inline]
    pub fn net_contribs(
        &self,
        n: NetId,
        label_of: impl FnMut(DeviceId) -> Option<u64>,
    ) -> Contribs {
        self.compiled.net_contribs(n, label_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::MosTypes;

    fn inverter(globals: bool) -> Netlist {
        let mut nl = Netlist::new("inv");
        let MosTypes { nmos, pmos } = nl.add_mos_types();
        let (a, y, vdd, gnd) = (nl.net("a"), nl.net("y"), nl.net("vdd"), nl.net("gnd"));
        if globals {
            nl.mark_global(vdd);
            nl.mark_global(gnd);
        }
        nl.add_device("mp", pmos, &[a, vdd, y]).unwrap();
        nl.add_device("mn", nmos, &[a, gnd, y]).unwrap();
        nl
    }

    #[test]
    fn csr_shape_matches_netlist() {
        let nl = inverter(false);
        let g = CircuitGraph::new(&nl);
        assert_eq!(g.device_count(), 2);
        assert_eq!(g.net_count(), 4);
        let a = nl.find_net("a").unwrap();
        assert_eq!(g.net_degree(a), 2);
        assert_eq!(g.net_neighbors(a).len(), 2);
        let mp = nl.find_device("mp").unwrap();
        assert_eq!(g.device_neighbors(mp).len(), 3);
    }

    #[test]
    fn initial_labels_follow_invariants() {
        let nl = inverter(false);
        let g = CircuitGraph::new(&nl);
        let mp = nl.find_device("mp").unwrap();
        let mn = nl.find_device("mn").unwrap();
        assert_ne!(
            g.initial_device_label(mp),
            g.initial_device_label(mn),
            "pmos vs nmos must partition apart"
        );
        let a = nl.find_net("a").unwrap();
        let y = nl.find_net("y").unwrap();
        // Both degree 2 => same initial partition.
        assert_eq!(g.initial_net_label(a), g.initial_net_label(y));
    }

    #[test]
    fn global_nets_get_fixed_name_labels() {
        let nl = inverter(true);
        let g = CircuitGraph::new(&nl);
        let vdd = nl.find_net("vdd").unwrap();
        let gnd = nl.find_net("gnd").unwrap();
        assert!(g.is_global(vdd));
        assert_ne!(g.initial_net_label(vdd), g.initial_net_label(gnd));
        assert_eq!(
            g.initial_net_label(vdd),
            crate::hashing::global_net_label("vdd")
        );
    }

    #[test]
    fn contribs_respect_skip_and_symmetry() {
        let nl = inverter(false);
        let g = CircuitGraph::new(&nl);
        let mp = nl.find_device("mp").unwrap();
        let all = g.device_contribs(mp, |_| Some(5));
        assert_eq!(all.used, 3);
        assert_eq!(all.skipped, 0);
        let none = g.device_contribs(mp, |_| None);
        assert_eq!(none.used, 0);
        assert_eq!(none.skipped, 3);
        assert_eq!(none.sum, 0);
    }

    #[test]
    fn source_drain_swap_leaves_contribs_unchanged() {
        // Two inverters whose transistors list source/drain in opposite
        // orders must accumulate identical device contributions.
        let mk = |swap: bool| {
            let mut nl = Netlist::new("inv");
            let MosTypes { nmos, .. } = nl.add_mos_types();
            let (a, y, gnd) = (nl.net("a"), nl.net("y"), nl.net("gnd"));
            let pins = if swap { [a, y, gnd] } else { [a, gnd, y] };
            nl.add_device("mn", nmos, &pins).unwrap();
            nl
        };
        let nl1 = mk(false);
        let nl2 = mk(true);
        let g1 = CircuitGraph::new(&nl1);
        let g2 = CircuitGraph::new(&nl2);
        let d = DeviceId::new(0);
        // Feed the same per-net labels keyed by net name.
        let label = |nl: &Netlist, n: NetId| match nl.net_ref(n).name() {
            "a" => Some(11),
            "y" => Some(22),
            "gnd" => Some(33),
            _ => None,
        };
        let c1 = g1.device_contribs(d, |n| label(&nl1, n));
        let c2 = g2.device_contribs(d, |n| label(&nl2, n));
        assert_eq!(c1.sum, c2.sum);
    }

    #[test]
    fn net_contribs_weighted_by_terminal_class() {
        let nl = inverter(false);
        let g = CircuitGraph::new(&nl);
        let a = nl.find_net("a").unwrap(); // two gate pins
        let y = nl.find_net("y").unwrap(); // two drain pins
        let ca = g.net_contribs(a, |_| Some(7));
        let cy = g.net_contribs(y, |_| Some(7));
        // Gate class multiplier differs from source/drain class, so the
        // sums must differ even with equal device labels.
        assert_ne!(ca.sum, cy.sum);
    }

    #[test]
    fn shim_delegates_to_shared_compiled_snapshot() {
        let nl = inverter(true);
        let g = CircuitGraph::new(&nl);
        let c = Arc::clone(g.compiled());
        let g2 = CircuitGraph::from_compiled(&nl, Arc::clone(&c));
        assert!(Arc::ptr_eq(g2.compiled(), &c));
        for n in nl.net_ids() {
            assert_eq!(g.initial_net_label(n), c.initial_net_label(n));
            assert_eq!(g2.net_degree(n), c.net_degree(n));
            assert_eq!(g.is_global(n), c.is_global(n));
        }
    }
}
