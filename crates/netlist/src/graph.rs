//! [`CircuitGraph`]: a compact bipartite-graph view of a [`Netlist`].
//!
//! The graph is stored in CSR (compressed sparse row) form on both sides
//! with per-pin class multipliers and initial labels precomputed, so that
//! the labeling loops of Gemini and SubGemini touch only flat arrays.
//!
//! Representing nets as first-class vertices (rather than cliques of
//! device-device edges) is the paper's §II modeling decision: it reduces
//! `N(N−1)/2` edges to `N` and exposes net structure to partitioning.

use crate::hashing;
use crate::id::{DeviceId, NetId};
use crate::netlist::Netlist;

/// The neighbor-contribution accumulator returned by the relabeling
/// helpers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Contribs {
    /// Wrapping sum of `class_multiplier × neighbor_label` over the
    /// neighbors whose labels were supplied.
    pub sum: u64,
    /// Number of neighbors whose labels were supplied.
    pub used: usize,
    /// Number of neighbors skipped (callback returned `None`).
    pub skipped: usize,
}

/// A borrowed, query-optimized bipartite view of a netlist.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::{CircuitGraph, Netlist};
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// let mut nl = Netlist::new("inv");
/// let mos = nl.add_mos_types();
/// let (a, y, vdd, gnd) = (nl.net("a"), nl.net("y"), nl.net("vdd"), nl.net("gnd"));
/// nl.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// nl.add_device("mn", mos.nmos, &[a, gnd, y])?;
/// let g = CircuitGraph::new(&nl);
/// assert_eq!(g.device_count(), 2);
/// assert_eq!(g.net_neighbors(y).count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CircuitGraph<'a> {
    netlist: &'a Netlist,
    dev_pin_start: Vec<u32>,
    dev_pin_net: Vec<NetId>,
    dev_pin_mult: Vec<u64>,
    net_pin_start: Vec<u32>,
    net_pin_dev: Vec<DeviceId>,
    net_pin_mult: Vec<u64>,
    dev_init: Vec<u64>,
    net_init: Vec<u64>,
    net_global: Vec<bool>,
}

impl<'a> CircuitGraph<'a> {
    /// Builds the CSR view of `netlist`.
    pub fn new(netlist: &'a Netlist) -> Self {
        let nd = netlist.device_count();
        let nn = netlist.net_count();
        let mut dev_pin_start = Vec::with_capacity(nd + 1);
        let mut dev_pin_net = Vec::new();
        let mut dev_pin_mult = Vec::new();
        dev_pin_start.push(0);
        for d in netlist.device_ids() {
            let dev = netlist.device(d);
            let ty = netlist.device_type_of(d);
            for (i, &n) in dev.pins().iter().enumerate() {
                dev_pin_net.push(n);
                dev_pin_mult.push(ty.class_multiplier(i));
            }
            dev_pin_start.push(dev_pin_net.len() as u32);
        }
        let mut net_pin_start = Vec::with_capacity(nn + 1);
        let mut net_pin_dev = Vec::new();
        let mut net_pin_mult = Vec::new();
        net_pin_start.push(0);
        for n in netlist.net_ids() {
            for pin in netlist.net_ref(n).pins() {
                let ty = netlist.device_type_of(pin.device);
                net_pin_dev.push(pin.device);
                net_pin_mult.push(ty.class_multiplier(pin.terminal as usize));
            }
            net_pin_start.push(net_pin_dev.len() as u32);
        }
        let dev_init = netlist
            .device_ids()
            .map(|d| netlist.device_type_of(d).initial_label())
            .collect();
        let (net_init, net_global): (Vec<u64>, Vec<bool>) = netlist
            .net_ids()
            .map(|n| {
                let net = netlist.net_ref(n);
                if net.is_global() {
                    (hashing::global_net_label(net.name()), true)
                } else {
                    (hashing::net_degree_label(net.degree()), false)
                }
            })
            .unzip();
        Self {
            netlist,
            dev_pin_start,
            dev_pin_net,
            dev_pin_mult,
            net_pin_start,
            net_pin_dev,
            net_pin_mult,
            dev_init,
            net_init,
            net_global,
        }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Number of device vertices.
    #[inline]
    pub fn device_count(&self) -> usize {
        self.dev_init.len()
    }

    /// Number of net vertices.
    #[inline]
    pub fn net_count(&self) -> usize {
        self.net_init.len()
    }

    /// Whether net `n` is a special global signal.
    #[inline]
    pub fn is_global(&self, n: NetId) -> bool {
        self.net_global[n.index()]
    }

    /// The nets adjacent to device `d`, each with the class multiplier of
    /// the connecting terminal.
    #[inline]
    pub fn device_neighbors(
        &self,
        d: DeviceId,
    ) -> impl ExactSizeIterator<Item = (NetId, u64)> + '_ {
        let lo = self.dev_pin_start[d.index()] as usize;
        let hi = self.dev_pin_start[d.index() + 1] as usize;
        self.dev_pin_net[lo..hi]
            .iter()
            .copied()
            .zip(self.dev_pin_mult[lo..hi].iter().copied())
    }

    /// The devices adjacent to net `n`, each with the class multiplier of
    /// the connecting terminal.
    #[inline]
    pub fn net_neighbors(&self, n: NetId) -> impl ExactSizeIterator<Item = (DeviceId, u64)> + '_ {
        let lo = self.net_pin_start[n.index()] as usize;
        let hi = self.net_pin_start[n.index() + 1] as usize;
        self.net_pin_dev[lo..hi]
            .iter()
            .copied()
            .zip(self.net_pin_mult[lo..hi].iter().copied())
    }

    /// Degree of net `n` (number of pins).
    #[inline]
    pub fn net_degree(&self, n: NetId) -> usize {
        (self.net_pin_start[n.index() + 1] - self.net_pin_start[n.index()]) as usize
    }

    /// Initial (vertex-invariant) label of device `d`: a hash of its type
    /// name.
    #[inline]
    pub fn initial_device_label(&self, d: DeviceId) -> u64 {
        self.dev_init[d.index()]
    }

    /// Initial label of net `n`: its degree hash, or the fixed global
    /// label for special nets.
    #[inline]
    pub fn initial_net_label(&self, n: NetId) -> u64 {
        self.net_init[n.index()]
    }

    /// Accumulates the weighted label contributions of the nets around
    /// device `d`. `label_of` returns `None` to skip a neighbor (corrupt
    /// in Phase I, suspect in Phase II).
    #[inline]
    pub fn device_contribs(
        &self,
        d: DeviceId,
        mut label_of: impl FnMut(NetId) -> Option<u64>,
    ) -> Contribs {
        let mut c = Contribs::default();
        for (n, mult) in self.device_neighbors(d) {
            match label_of(n) {
                Some(l) => {
                    c.sum = c.sum.wrapping_add(mult.wrapping_mul(l));
                    c.used += 1;
                }
                None => c.skipped += 1,
            }
        }
        c
    }

    /// Accumulates the weighted label contributions of the devices around
    /// net `n`; see [`CircuitGraph::device_contribs`].
    #[inline]
    pub fn net_contribs(
        &self,
        n: NetId,
        mut label_of: impl FnMut(DeviceId) -> Option<u64>,
    ) -> Contribs {
        let mut c = Contribs::default();
        for (d, mult) in self.net_neighbors(n) {
            match label_of(d) {
                Some(l) => {
                    c.sum = c.sum.wrapping_add(mult.wrapping_mul(l));
                    c.used += 1;
                }
                None => c.skipped += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::MosTypes;

    fn inverter(globals: bool) -> Netlist {
        let mut nl = Netlist::new("inv");
        let MosTypes { nmos, pmos } = nl.add_mos_types();
        let (a, y, vdd, gnd) = (nl.net("a"), nl.net("y"), nl.net("vdd"), nl.net("gnd"));
        if globals {
            nl.mark_global(vdd);
            nl.mark_global(gnd);
        }
        nl.add_device("mp", pmos, &[a, vdd, y]).unwrap();
        nl.add_device("mn", nmos, &[a, gnd, y]).unwrap();
        nl
    }

    #[test]
    fn csr_shape_matches_netlist() {
        let nl = inverter(false);
        let g = CircuitGraph::new(&nl);
        assert_eq!(g.device_count(), 2);
        assert_eq!(g.net_count(), 4);
        let a = nl.find_net("a").unwrap();
        assert_eq!(g.net_degree(a), 2);
        assert_eq!(g.net_neighbors(a).len(), 2);
        let mp = nl.find_device("mp").unwrap();
        assert_eq!(g.device_neighbors(mp).len(), 3);
    }

    #[test]
    fn initial_labels_follow_invariants() {
        let nl = inverter(false);
        let g = CircuitGraph::new(&nl);
        let mp = nl.find_device("mp").unwrap();
        let mn = nl.find_device("mn").unwrap();
        assert_ne!(
            g.initial_device_label(mp),
            g.initial_device_label(mn),
            "pmos vs nmos must partition apart"
        );
        let a = nl.find_net("a").unwrap();
        let y = nl.find_net("y").unwrap();
        // Both degree 2 => same initial partition.
        assert_eq!(g.initial_net_label(a), g.initial_net_label(y));
    }

    #[test]
    fn global_nets_get_fixed_name_labels() {
        let nl = inverter(true);
        let g = CircuitGraph::new(&nl);
        let vdd = nl.find_net("vdd").unwrap();
        let gnd = nl.find_net("gnd").unwrap();
        assert!(g.is_global(vdd));
        assert_ne!(g.initial_net_label(vdd), g.initial_net_label(gnd));
        assert_eq!(
            g.initial_net_label(vdd),
            crate::hashing::global_net_label("vdd")
        );
    }

    #[test]
    fn contribs_respect_skip_and_symmetry() {
        let nl = inverter(false);
        let g = CircuitGraph::new(&nl);
        let mp = nl.find_device("mp").unwrap();
        let all = g.device_contribs(mp, |_| Some(5));
        assert_eq!(all.used, 3);
        assert_eq!(all.skipped, 0);
        let none = g.device_contribs(mp, |_| None);
        assert_eq!(none.used, 0);
        assert_eq!(none.skipped, 3);
        assert_eq!(none.sum, 0);
    }

    #[test]
    fn source_drain_swap_leaves_contribs_unchanged() {
        // Two inverters whose transistors list source/drain in opposite
        // orders must accumulate identical device contributions.
        let mk = |swap: bool| {
            let mut nl = Netlist::new("inv");
            let MosTypes { nmos, .. } = nl.add_mos_types();
            let (a, y, gnd) = (nl.net("a"), nl.net("y"), nl.net("gnd"));
            let pins = if swap { [a, y, gnd] } else { [a, gnd, y] };
            nl.add_device("mn", nmos, &pins).unwrap();
            nl
        };
        let nl1 = mk(false);
        let nl2 = mk(true);
        let g1 = CircuitGraph::new(&nl1);
        let g2 = CircuitGraph::new(&nl2);
        let d = DeviceId::new(0);
        // Feed the same per-net labels keyed by net name.
        let label = |nl: &Netlist, n: NetId| match nl.net_ref(n).name() {
            "a" => Some(11),
            "y" => Some(22),
            "gnd" => Some(33),
            _ => None,
        };
        let c1 = g1.device_contribs(d, |n| label(&nl1, n));
        let c2 = g2.device_contribs(d, |n| label(&nl2, n));
        assert_eq!(c1.sum, c2.sum);
    }

    #[test]
    fn net_contribs_weighted_by_terminal_class() {
        let nl = inverter(false);
        let g = CircuitGraph::new(&nl);
        let a = nl.find_net("a").unwrap(); // two gate pins
        let y = nl.find_net("y").unwrap(); // two drain pins
        let ca = g.net_contribs(a, |_| Some(7));
        let cy = g.net_contribs(y, |_| Some(7));
        // Gate class multiplier differs from source/drain class, so the
        // sums must differ even with equal device labels.
        assert_ne!(ca.sum, cy.sum);
    }
}
