//! Bipartite circuit-graph data model for the SubGemini reproduction.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`Netlist`] — a flat circuit: named [`DeviceType`]s with terminal
//!   equivalence classes, device instances, nets with port/global flags.
//! * [`CompiledCircuit`] — an immutable, `Arc`-shareable CSR snapshot
//!   with precomputed labeling material (initial labels, per-pin class
//!   multipliers, global/port flags), compiled from a netlist in one
//!   pass and reused across patterns, threads, and extraction passes.
//! * [`CircuitGraph`] — a thin borrowed shim over [`CompiledCircuit`]
//!   keeping the legacy view API.
//! * [`artifact`] — a versioned, checksummed, dependency-free binary
//!   format (`.sgc`) persisting a compiled circuit together with its
//!   [`FingerprintIndex`] for warm starts across processes.
//! * [`hashing`] — the 64-bit labeling primitives implementing the
//!   relabeling function of the paper's Fig. 3.
//! * [`instantiate`] — hierarchical composition for generators and the
//!   SPICE flattener.
//!
//! The model follows §II of the paper: a circuit is an undirected
//! bipartite graph with device vertices and net vertices; device
//! terminals are grouped into equivalence classes expressing
//! interchangeability (a MOS source and drain may swap, its gate may
//! not).
//!
//! # Examples
//!
//! Build a CMOS inverter and inspect its graph:
//!
//! ```
//! use subgemini_netlist::{CircuitGraph, Netlist, NetlistStats};
//!
//! # fn main() -> Result<(), subgemini_netlist::NetlistError> {
//! let mut nl = Netlist::new("inverter");
//! let mos = nl.add_mos_types();
//! let (a, y) = (nl.net("a"), nl.net("y"));
//! let (vdd, gnd) = (nl.net("vdd"), nl.net("gnd"));
//! nl.mark_global(vdd);
//! nl.mark_global(gnd);
//! nl.mark_port(a);
//! nl.mark_port(y);
//! nl.add_device("mp", mos.pmos, &[a, vdd, y])?;
//! nl.add_device("mn", mos.nmos, &[a, gnd, y])?;
//!
//! let graph = CircuitGraph::new(&nl);
//! assert_eq!(graph.device_count(), 2);
//! assert_eq!(NetlistStats::of(&nl).pins, 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
mod compiled;
mod compose;
mod dot;
mod error;
mod fingerprint;
mod graph;
pub mod hashing;
mod id;
mod merge;
mod netlist;
pub mod rng;
mod stats;
mod types;

pub use artifact::{structural_digest, Artifact, ArtifactError};
pub use compiled::CompiledCircuit;
pub use compose::{instantiate, InstantiateReport};
pub use dot::to_dot;
pub use error::NetlistError;
pub use fingerprint::{FingerprintIndex, HOP2_CAP};
pub use graph::{CircuitGraph, Contribs};
pub use id::{DeviceId, DeviceTypeId, NetId, Vertex};
pub use merge::{merge_parallel, MergeReport};
pub use netlist::{Device, MosTypes, Net, Netlist, Pin};
pub use stats::NetlistStats;
pub use types::{DeviceType, TerminalSpec};
