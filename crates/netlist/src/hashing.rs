//! Label hashing primitives shared by Gemini and SubGemini.
//!
//! The paper approximates "exact" partition labels with integers computed
//! by the relabeling function of Fig. 3:
//!
//! ```text
//! d1' = d1 + s*v1 + s*v3 + g*v2
//! ```
//!
//! i.e. the new label of a vertex is its old label plus the sum over
//! neighbors of `class_multiplier × neighbor_label`. The sum is
//! commutative, which is exactly what makes interchangeable terminals
//! (source/drain) produce identical labels regardless of pin order.
//!
//! We use 64-bit wrapping arithmetic plus a SplitMix64 finalizer. The
//! finalizer is applied *after* the commutative accumulation so symmetry
//! is preserved while arithmetic coincidences (e.g. `2 + 2 == 1 + 3`)
//! are destroyed with overwhelming probability. As in the paper, labels
//! are probabilistic: a collision can waste work but never produce a
//! wrong answer, because final mappings are verified structurally.

/// FNV-1a hash of a string, used to seed all name-derived label material.
#[inline]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixing function.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Multiplier for contributions through a terminal of class `class` on a
/// device of type `type_name`.
///
/// Forced odd so multiplication by it is a bijection on `u64` (no label
/// information is destroyed by the weighting).
#[inline]
pub fn class_multiplier(type_name: &str, class: &str) -> u64 {
    mix(fnv1a(type_name).rotate_left(17) ^ fnv1a(class)) | 1
}

/// Initial label for a net vertex of the given degree.
///
/// Nets are initially partitioned by their degree (number of device
/// pins), per §III of the paper.
#[inline]
pub fn net_degree_label(degree: usize) -> u64 {
    mix(0x6e65_7464_6567 ^ (degree as u64).wrapping_mul(0x2545_f491_4f6c_dd1d))
}

/// Fixed label for a special (global) net such as `Vdd` or `GND`.
///
/// Special nets are pre-matched by name between the pattern and the main
/// circuit, so their labels derive from the name and never change.
#[inline]
pub fn global_net_label(name: &str) -> u64 {
    mix(fnv1a("global:") ^ fnv1a(name))
}

/// Combines an old label with the committed sum of neighbor
/// contributions, producing the new label.
#[inline]
pub fn relabel(old: u64, contribution_sum: u64) -> u64 {
    mix(old ^ contribution_sum.rotate_left(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_strings() {
        assert_ne!(fnv1a("nmos"), fnv1a("pmos"));
        assert_ne!(fnv1a(""), fnv1a("a"));
        assert_eq!(fnv1a("vdd"), fnv1a("vdd"));
    }

    #[test]
    fn mix_is_not_identity_and_deterministic() {
        assert_ne!(mix(0), 0);
        assert_eq!(mix(42), mix(42));
        assert_ne!(mix(1), mix(2));
    }

    #[test]
    fn class_multiplier_is_odd() {
        for (t, c) in [("nmos", "g"), ("pmos", "sd"), ("res", "ab"), ("x", "")] {
            assert_eq!(class_multiplier(t, c) & 1, 1);
        }
    }

    #[test]
    fn degree_labels_distinct_for_small_degrees() {
        let labels: Vec<u64> = (0..64).map(net_degree_label).collect();
        for i in 0..labels.len() {
            for j in 0..i {
                assert_ne!(labels[i], labels[j], "degree {i} vs {j}");
            }
        }
    }

    #[test]
    fn relabel_order_of_contributions_is_commutative() {
        // The *caller* sums contributions with wrapping_add, which is
        // commutative; relabel only sees the sum. Simulate two pin orders.
        let m = class_multiplier("nmos", "sd");
        let (a, b) = (mix(1), mix(2));
        let sum1 = m.wrapping_mul(a).wrapping_add(m.wrapping_mul(b));
        let sum2 = m.wrapping_mul(b).wrapping_add(m.wrapping_mul(a));
        assert_eq!(relabel(7, sum1), relabel(7, sum2));
    }

    #[test]
    fn relabel_sensitive_to_old_label_and_sum() {
        assert_ne!(relabel(1, 5), relabel(2, 5));
        assert_ne!(relabel(1, 5), relabel(1, 6));
    }

    #[test]
    fn global_labels_name_keyed() {
        assert_eq!(global_net_label("vdd"), global_net_label("vdd"));
        assert_ne!(global_net_label("vdd"), global_net_label("gnd"));
        // A global label never collides with small-degree labels by
        // construction probability; spot-check a few.
        for d in 0..16 {
            assert_ne!(global_net_label("vdd"), net_degree_label(d));
        }
    }
}
