//! Parallel-device merging: collapsing transistor fingers.
//!
//! Layout generators routinely split a wide transistor into several
//! parallel *fingers* — same type, same nets on every terminal (up to
//! terminal-class symmetry). A pattern drawn with one transistor per
//! position would otherwise miss such instances, and the paper's Fig. 5
//! shows exactly this shape as the canonical ambiguity. Merging
//! parallel devices before matching is the standard normalization: it
//! removes the ambiguity *and* makes fingered layouts match unfingered
//! patterns.

use std::collections::HashMap;

use crate::id::{DeviceId, NetId};
use crate::netlist::Netlist;

/// Report of a [`merge_parallel`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Devices in the input.
    pub devices_before: usize,
    /// Devices in the output.
    pub devices_after: usize,
    /// Groups that actually merged (≥2 members), as
    /// `(surviving name, absorbed names)`.
    pub merged: Vec<(String, Vec<String>)>,
}

impl MergeReport {
    /// Number of devices removed by merging.
    pub fn removed(&self) -> usize {
        self.devices_before - self.devices_after
    }
}

/// Returns a copy of `netlist` with parallel devices merged: devices of
/// the same type whose pins connect to the same nets through the same
/// terminal classes (in any order within a class) collapse into the
/// first of their group.
///
/// Grouping key: type name plus the class-weighted pin multiset.
type ParallelKey = (String, Vec<(u64, NetId)>);

/// Returns a copy of `netlist` with parallel devices merged (see the
/// module docs).
///
/// # Examples
///
/// ```
/// use subgemini_netlist::{merge_parallel, Netlist};
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// let mut nl = Netlist::new("fingered");
/// let mos = nl.add_mos_types();
/// let (g, s, d) = (nl.net("g"), nl.net("s"), nl.net("d"));
/// nl.add_device("m1a", mos.nmos, &[g, s, d])?;
/// nl.add_device("m1b", mos.nmos, &[g, d, s])?; // s/d swapped finger
/// nl.add_device("m2", mos.nmos, &[s, g, d])?; // different gate: kept
/// let (merged, report) = merge_parallel(&nl);
/// assert_eq!(merged.device_count(), 2);
/// assert_eq!(report.removed(), 1);
/// # Ok(())
/// # }
/// ```
pub fn merge_parallel(netlist: &Netlist) -> (Netlist, MergeReport) {
    // Group devices by (type name, sorted (class multiplier, net) pins).
    let mut groups: HashMap<ParallelKey, Vec<DeviceId>> = HashMap::new();
    for d in netlist.device_ids() {
        let ty = netlist.device_type_of(d);
        let mut key_pins: Vec<(u64, NetId)> = netlist
            .device(d)
            .pins()
            .iter()
            .enumerate()
            .map(|(i, &n)| (ty.class_multiplier(i), n))
            .collect();
        key_pins.sort_unstable();
        groups
            .entry((ty.name().to_string(), key_pins))
            .or_default()
            .push(d);
    }
    let mut survivor_of: HashMap<DeviceId, DeviceId> = HashMap::new();
    let mut report = MergeReport {
        devices_before: netlist.device_count(),
        ..MergeReport::default()
    };
    for members in groups.values() {
        let keep = *members.iter().min().expect("groups are non-empty");
        for &m in members {
            survivor_of.insert(m, keep);
        }
        if members.len() > 1 {
            let mut absorbed: Vec<String> = members
                .iter()
                .filter(|&&m| m != keep)
                .map(|&m| netlist.device(m).name().to_string())
                .collect();
            absorbed.sort();
            report
                .merged
                .push((netlist.device(keep).name().to_string(), absorbed));
        }
    }
    report.merged.sort();
    // Rebuild with survivors only (in original order for determinism).
    let mut out = Netlist::new(netlist.name().to_string());
    for ty in netlist.device_types() {
        out.add_type(ty.clone()).expect("types are valid");
    }
    for d in netlist.device_ids() {
        if survivor_of.get(&d) != Some(&d) {
            continue;
        }
        let dev = netlist.device(d);
        let pins: Vec<NetId> = dev
            .pins()
            .iter()
            .map(|&n| {
                let net = netlist.net_ref(n);
                let id = out.net(net.name());
                if net.is_global() {
                    out.mark_global(id);
                }
                id
            })
            .collect();
        out.add_device(dev.name().to_string(), dev.type_id(), &pins)
            .expect("copying preserves validity");
    }
    // Carry port marks for surviving nets.
    for &p in netlist.ports() {
        let name = netlist.net_ref(p).name();
        if let Some(id) = out.find_net(name) {
            out.mark_port(id);
        } else {
            let id = out.net(name);
            out.mark_port(id);
        }
    }
    let out = out.compact();
    report.devices_after = out.device_count();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_fingers_across_sd_swap() {
        let mut nl = Netlist::new("x");
        let mos = nl.add_mos_types();
        let (g, s, d) = (nl.net("g"), nl.net("s"), nl.net("d"));
        for (i, pins) in [[g, s, d], [g, d, s], [g, s, d]].iter().enumerate() {
            nl.add_device(format!("f{i}"), mos.nmos, pins).unwrap();
        }
        let (merged, report) = merge_parallel(&nl);
        assert_eq!(merged.device_count(), 1);
        assert_eq!(report.removed(), 2);
        assert_eq!(report.merged.len(), 1);
        assert_eq!(report.merged[0].0, "f0");
        assert_eq!(report.merged[0].1, vec!["f1", "f2"]);
        merged.validate().unwrap();
    }

    #[test]
    fn distinct_gates_do_not_merge() {
        let mut nl = Netlist::new("x");
        let mos = nl.add_mos_types();
        let (g1, g2, s, d) = (nl.net("g1"), nl.net("g2"), nl.net("s"), nl.net("d"));
        nl.add_device("a", mos.nmos, &[g1, s, d]).unwrap();
        nl.add_device("b", mos.nmos, &[g2, s, d]).unwrap();
        let (merged, report) = merge_parallel(&nl);
        assert_eq!(merged.device_count(), 2);
        assert!(report.merged.is_empty());
    }

    #[test]
    fn gate_vs_sd_position_not_confused() {
        // Same three nets, but one device has the gate on `s`: the
        // class-weighted key must keep them apart.
        let mut nl = Netlist::new("x");
        let mos = nl.add_mos_types();
        let (g, s, d) = (nl.net("g"), nl.net("s"), nl.net("d"));
        nl.add_device("a", mos.nmos, &[g, s, d]).unwrap();
        nl.add_device("b", mos.nmos, &[s, g, d]).unwrap();
        let (merged, _) = merge_parallel(&nl);
        assert_eq!(merged.device_count(), 2);
    }

    #[test]
    fn different_types_do_not_merge() {
        let mut nl = Netlist::new("x");
        let mos = nl.add_mos_types();
        let (g, s, d) = (nl.net("g"), nl.net("s"), nl.net("d"));
        nl.add_device("a", mos.nmos, &[g, s, d]).unwrap();
        nl.add_device("b", mos.pmos, &[g, s, d]).unwrap();
        let (merged, _) = merge_parallel(&nl);
        assert_eq!(merged.device_count(), 2);
    }

    #[test]
    fn ports_and_globals_survive() {
        let mut nl = Netlist::new("x");
        let mos = nl.add_mos_types();
        let (g, s, d) = (nl.net("g"), nl.net("vdd"), nl.net("d"));
        nl.mark_global(s);
        nl.mark_port(g);
        nl.mark_port(d);
        nl.add_device("a", mos.pmos, &[g, s, d]).unwrap();
        nl.add_device("b", mos.pmos, &[g, s, d]).unwrap();
        let (merged, _) = merge_parallel(&nl);
        let vdd = merged.find_net("vdd").unwrap();
        assert!(merged.net_ref(vdd).is_global());
        assert_eq!(merged.ports().len(), 2);
    }

    #[test]
    fn idempotent() {
        let mut nl = Netlist::new("x");
        let mos = nl.add_mos_types();
        let (g, s, d) = (nl.net("g"), nl.net("s"), nl.net("d"));
        nl.add_device("a", mos.nmos, &[g, s, d]).unwrap();
        nl.add_device("b", mos.nmos, &[g, d, s]).unwrap();
        let (m1, _) = merge_parallel(&nl);
        let (m2, r2) = merge_parallel(&m1);
        assert_eq!(m1.device_count(), m2.device_count());
        assert_eq!(r2.removed(), 0);
    }
}
