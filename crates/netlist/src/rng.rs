//! A small, dependency-free deterministic PRNG.
//!
//! The repository must build with no external crates, so the seeded
//! randomness the workload generators and property tests need lives
//! here instead of `rand`. The generator is SplitMix64 (Steele,
//! Lea & Flood, OOPSLA 2014): a 64-bit state advanced by a Weyl
//! constant and finalized with an avalanche mix. It is fast, passes
//! BigCrush when used as a stream, and — most importantly for us — a
//! given seed produces the same sequence on every platform and in
//! every run, so generated circuits are bit-reproducible.
//!
//! Not cryptographic; do not use for anything security-relevant.

/// A seeded SplitMix64 stream.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::rng::Rng64;
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range(0, 10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi - lo) as u64;
        // Multiply-shift rejection-free mapping (Lemire). The modulo
        // bias of a plain `% span` would be < 2^-32 for our spans, but
        // the widening multiply is just as cheap and exact enough.
        let hi128 = (self.next_u64() as u128 * span as u128) >> 64;
        lo + hi128 as usize
    }

    /// A uniform index into a slice of length `len` (`len > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.range(0, len)
    }

    /// `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0, "zero denominator");
        (self.next_u64() % den) < num
    }

    /// A random ASCII-printable `String` of length `len` (space through
    /// tilde, plus newline with ~1/16 probability — the alphabet the
    /// parser fuzz tests exercise).
    pub fn printable(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| {
                if self.ratio(1, 16) {
                    '\n'
                } else {
                    (b' ' + self.range(0, 95) as u8) as char
                }
            })
            .collect()
    }

    /// A random lowercase identifier of length in `[1, max_len]`.
    pub fn ident(&mut self, max_len: usize) -> String {
        let len = self.range(1, max_len.max(1) + 1);
        let mut s = String::with_capacity(len);
        s.push((b'a' + self.range(0, 26) as u8) as char);
        for _ in 1..len {
            let c = self.range(0, 36);
            s.push(if c < 26 {
                (b'a' + c as u8) as char
            } else {
                (b'0' + (c - 26) as u8) as char
            });
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng64::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn range_stays_in_bounds_and_covers() {
        let mut r = Rng64::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.range(3, 13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values hit in 1000 draws");
    }

    #[test]
    fn ratio_is_roughly_fair() {
        let mut r = Rng64::new(2);
        let hits = (0..4000).filter(|_| r.ratio(1, 2)).count();
        assert!((1700..2300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn ident_is_wellformed() {
        let mut r = Rng64::new(3);
        for _ in 0..100 {
            let s = r.ident(7);
            assert!(!s.is_empty() && s.len() <= 7);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn printable_alphabet() {
        let mut r = Rng64::new(4);
        let s = r.printable(400);
        assert_eq!(s.chars().count(), 400);
        assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
    }
}
