//! Summary statistics over a netlist, used by reports and benches.

use std::collections::BTreeMap;
use std::fmt;

use crate::netlist::Netlist;

/// Aggregate counts describing a [`Netlist`].
///
/// # Examples
///
/// ```
/// use subgemini_netlist::{Netlist, NetlistStats};
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// let mut nl = Netlist::new("inv");
/// let mos = nl.add_mos_types();
/// let (a, y, vdd, gnd) = (nl.net("a"), nl.net("y"), nl.net("vdd"), nl.net("gnd"));
/// nl.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// nl.add_device("mn", mos.nmos, &[a, gnd, y])?;
/// let stats = NetlistStats::of(&nl);
/// assert_eq!(stats.devices, 2);
/// assert_eq!(stats.devices_by_type["nmos"], 1);
/// assert_eq!(stats.max_net_degree, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Total device count.
    pub devices: usize,
    /// Total net count.
    pub nets: usize,
    /// Total pin (edge) count.
    pub pins: usize,
    /// Port net count.
    pub ports: usize,
    /// Global (special) net count.
    pub globals: usize,
    /// Device counts keyed by type name (sorted for stable display).
    pub devices_by_type: BTreeMap<String, usize>,
    /// Largest net degree.
    pub max_net_degree: usize,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    pub fn of(netlist: &Netlist) -> Self {
        let mut devices_by_type = BTreeMap::new();
        for d in netlist.device_ids() {
            *devices_by_type
                .entry(netlist.device_type_of(d).name().to_string())
                .or_insert(0) += 1;
        }
        let mut max_net_degree = 0;
        let mut globals = 0;
        for n in netlist.net_ids() {
            let net = netlist.net_ref(n);
            max_net_degree = max_net_degree.max(net.degree());
            if net.is_global() {
                globals += 1;
            }
        }
        Self {
            devices: netlist.device_count(),
            nets: netlist.net_count(),
            pins: netlist.pin_count(),
            ports: netlist.ports().len(),
            globals,
            devices_by_type,
            max_net_degree,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} devices / {} nets / {} pins (ports {}, globals {}, max degree {})",
            self.devices, self.nets, self.pins, self.ports, self.globals, self.max_net_degree
        )?;
        for (ty, n) in &self.devices_by_type {
            write!(f, "\n  {ty}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_empty_netlist() {
        let nl = Netlist::new("empty");
        let s = NetlistStats::of(&nl);
        assert_eq!(s, NetlistStats::default());
        assert!(s.to_string().contains("0 devices"));
    }

    #[test]
    fn stats_count_by_type_and_degree() {
        let mut nl = Netlist::new("x");
        let mos = nl.add_mos_types();
        let shared = nl.net("shared");
        let other = nl.net("other");
        nl.mark_global(shared);
        for i in 0..3 {
            nl.add_device(format!("m{i}"), mos.nmos, &[shared, shared, other])
                .unwrap();
        }
        nl.add_device("p0", mos.pmos, &[other, other, other])
            .unwrap();
        let s = NetlistStats::of(&nl);
        assert_eq!(s.devices, 4);
        assert_eq!(s.devices_by_type["nmos"], 3);
        assert_eq!(s.devices_by_type["pmos"], 1);
        assert_eq!(s.pins, 12);
        assert_eq!(s.globals, 1);
        assert_eq!(s.max_net_degree, 6);
        assert!(s.to_string().contains("nmos: 3"));
    }
}
