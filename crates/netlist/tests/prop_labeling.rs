//! Property tests for the labeling engine's invariants — the
//! foundations both Gemini and SubGemini rely on.

use proptest::prelude::*;
use subgemini_netlist::{CircuitGraph, DeviceType, NetId, Netlist};

/// Builds a random netlist from an opcode stream: `n_nets` wires plus
/// devices whose pins are chosen by the `picks` values.
fn random_netlist(n_nets: usize, devices: &[(u8, [usize; 3])]) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mos = nl.add_mos_types();
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let nets: Vec<NetId> = (0..n_nets.max(1))
        .map(|i| nl.net(format!("w{i}")))
        .collect();
    for (i, (kind, pins)) in devices.iter().enumerate() {
        let p = |k: usize| nets[pins[k] % nets.len()];
        match kind % 3 {
            0 => {
                nl.add_device(format!("n{i}"), mos.nmos, &[p(0), p(1), p(2)])
                    .unwrap();
            }
            1 => {
                nl.add_device(format!("p{i}"), mos.pmos, &[p(0), p(1), p(2)])
                    .unwrap();
            }
            _ => {
                nl.add_device(format!("r{i}"), res, &[p(0), p(1)]).unwrap();
            }
        }
    }
    nl
}

/// The same netlist with every MOS source/drain pair swapped.
fn swap_sd(nl: &Netlist) -> Netlist {
    let mut out = Netlist::new(nl.name().to_string());
    for ty in nl.device_types() {
        out.add_type(ty.clone()).unwrap();
    }
    for n in nl.net_ids() {
        let net = nl.net_ref(n);
        let id = out.net(net.name());
        if net.is_global() {
            out.mark_global(id);
        }
    }
    for d in nl.device_ids() {
        let dev = nl.device(d);
        let ty = nl.device_type_of(d);
        let mut pins: Vec<NetId> = dev
            .pins()
            .iter()
            .map(|&n| out.net(nl.net_ref(n).name()))
            .collect();
        // Swap any two terminals sharing a class.
        'outer: for i in 0..pins.len() {
            for j in (i + 1)..pins.len() {
                if ty.same_class(i, j) {
                    pins.swap(i, j);
                    break 'outer;
                }
            }
        }
        out.add_device(dev.name().to_string(), dev.type_id(), &pins)
            .unwrap();
    }
    out
}

/// Runs `k` full Jacobi relabel rounds and returns the sorted label
/// multiset (device labels then net labels).
fn labels_after(nl: &Netlist, k: usize) -> (Vec<u64>, Vec<u64>) {
    let g = CircuitGraph::new(nl);
    let mut dev: Vec<u64> = nl.device_ids().map(|d| g.initial_device_label(d)).collect();
    let mut net: Vec<u64> = nl.net_ids().map(|n| g.initial_net_label(n)).collect();
    for _ in 0..k {
        let new_net: Vec<u64> = nl
            .net_ids()
            .map(|n| {
                let c = g.net_contribs(n, |d| Some(dev[d.index()]));
                subgemini_netlist::hashing::relabel(net[n.index()], c.sum)
            })
            .collect();
        let new_dev: Vec<u64> = nl
            .device_ids()
            .map(|d| {
                let c = g.device_contribs(d, |n| Some(new_net[n.index()]));
                subgemini_netlist::hashing::relabel(dev[d.index()], c.sum)
            })
            .collect();
        net = new_net;
        dev = new_dev;
    }
    dev.sort_unstable();
    net.sort_unstable();
    (dev, net)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Swapping pins within a terminal equivalence class never changes
    /// any label, at any refinement depth.
    #[test]
    fn labels_invariant_under_class_swaps(
        n_nets in 1usize..8,
        devices in prop::collection::vec((0u8..3, [any::<usize>(), any::<usize>(), any::<usize>()]), 1..12),
        rounds in 1usize..5,
    ) {
        let a = random_netlist(n_nets, &devices);
        let b = swap_sd(&a);
        prop_assert_eq!(labels_after(&a, rounds), labels_after(&b, rounds));
    }

    /// Renaming nets and devices never changes the label multiset
    /// (labels derive from structure and type names only).
    #[test]
    fn labels_invariant_under_renaming(
        n_nets in 1usize..8,
        devices in prop::collection::vec((0u8..3, [any::<usize>(), any::<usize>(), any::<usize>()]), 1..12),
    ) {
        let a = random_netlist(n_nets, &devices);
        let mut b = Netlist::new("renamed");
        for ty in a.device_types() {
            b.add_type(ty.clone()).unwrap();
        }
        for d in a.device_ids() {
            let dev = a.device(d);
            let pins: Vec<NetId> = dev
                .pins()
                .iter()
                .map(|&n| b.net(format!("zz_{}", a.net_ref(n).name())))
                .collect();
            b.add_device(format!("dev_{}", dev.name()), dev.type_id(), &pins)
                .unwrap();
        }
        // Isolated nets don't exist in b; compact a to align.
        let a = a.compact();
        prop_assert_eq!(labels_after(&a, 3), labels_after(&b, 3));
    }

    /// `compact` is idempotent and never drops a connected net.
    #[test]
    fn compact_idempotent(
        n_nets in 1usize..10,
        devices in prop::collection::vec((0u8..3, [any::<usize>(), any::<usize>(), any::<usize>()]), 0..10),
    ) {
        let a = random_netlist(n_nets, &devices);
        let c1 = a.compact();
        let c2 = c1.compact();
        prop_assert_eq!(c1.net_count(), c2.net_count());
        prop_assert_eq!(c1.device_count(), a.device_count());
        for n in c1.net_ids() {
            prop_assert!(c1.net_ref(n).degree() > 0);
        }
        c1.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    /// Validation always passes for netlists built through the API.
    #[test]
    fn api_built_netlists_validate(
        n_nets in 1usize..6,
        devices in prop::collection::vec((0u8..3, [any::<usize>(), any::<usize>(), any::<usize>()]), 0..16),
    ) {
        let a = random_netlist(n_nets, &devices);
        a.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let stats = subgemini_netlist::NetlistStats::of(&a);
        prop_assert_eq!(stats.devices, devices.len());
    }

    /// Distinct terminal classes must (overwhelmingly) produce distinct
    /// labels for structurally different wirings: a gate-connected vs a
    /// source-connected net differ after one round.
    #[test]
    fn class_distinction_shows_in_labels(pin in 0usize..3) {
        let mut nl = Netlist::new("x");
        let mos = nl.add_mos_types();
        let (a, b, c) = (nl.net("a"), nl.net("b"), nl.net("c"));
        nl.add_device("m", mos.nmos, &[a, b, c]).unwrap();
        let (_, nets) = labels_after(&nl, 1);
        // a (gate) must differ from b/c (s/d); b and c must agree:
        // sorted labels give exactly 2 distinct values.
        let mut uniq = nets.clone();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), 2, "pin={} nets={:?}", pin, nets);
    }
}
