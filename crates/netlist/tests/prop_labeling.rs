//! Property tests for the labeling engine's invariants — the
//! foundations both Gemini and SubGemini rely on. Cases are generated
//! from a seeded internal PRNG ([`Rng64`]) so every run explores the
//! same (reproducible) sample of the input space.

use subgemini_netlist::rng::Rng64;
use subgemini_netlist::{CircuitGraph, DeviceType, NetId, Netlist};

/// Builds a random netlist from an opcode stream: `n_nets` wires plus
/// devices whose pins are chosen by the `picks` values.
fn random_netlist(n_nets: usize, devices: &[(u8, [usize; 3])]) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mos = nl.add_mos_types();
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let nets: Vec<NetId> = (0..n_nets.max(1))
        .map(|i| nl.net(format!("w{i}")))
        .collect();
    for (i, (kind, pins)) in devices.iter().enumerate() {
        let p = |k: usize| nets[pins[k] % nets.len()];
        match kind % 3 {
            0 => {
                nl.add_device(format!("n{i}"), mos.nmos, &[p(0), p(1), p(2)])
                    .unwrap();
            }
            1 => {
                nl.add_device(format!("p{i}"), mos.pmos, &[p(0), p(1), p(2)])
                    .unwrap();
            }
            _ => {
                nl.add_device(format!("r{i}"), res, &[p(0), p(1)]).unwrap();
            }
        }
    }
    nl
}

/// Draws the shared `(n_nets, devices)` shape used by most cases.
fn draw_shape(
    rng: &mut Rng64,
    min_devices: usize,
    max_devices: usize,
) -> (usize, Vec<(u8, [usize; 3])>) {
    let n_nets = rng.range(1, 8);
    let n_dev = rng.range(min_devices, max_devices);
    let devices = (0..n_dev)
        .map(|_| {
            (
                rng.range(0, 3) as u8,
                [
                    rng.next_u64() as usize,
                    rng.next_u64() as usize,
                    rng.next_u64() as usize,
                ],
            )
        })
        .collect();
    (n_nets, devices)
}

/// The same netlist with every MOS source/drain pair swapped.
fn swap_sd(nl: &Netlist) -> Netlist {
    let mut out = Netlist::new(nl.name().to_string());
    for ty in nl.device_types() {
        out.add_type(ty.clone()).unwrap();
    }
    for n in nl.net_ids() {
        let net = nl.net_ref(n);
        let id = out.net(net.name());
        if net.is_global() {
            out.mark_global(id);
        }
    }
    for d in nl.device_ids() {
        let dev = nl.device(d);
        let ty = nl.device_type_of(d);
        let mut pins: Vec<NetId> = dev
            .pins()
            .iter()
            .map(|&n| out.net(nl.net_ref(n).name()))
            .collect();
        // Swap any two terminals sharing a class.
        'outer: for i in 0..pins.len() {
            for j in (i + 1)..pins.len() {
                if ty.same_class(i, j) {
                    pins.swap(i, j);
                    break 'outer;
                }
            }
        }
        out.add_device(dev.name().to_string(), dev.type_id(), &pins)
            .unwrap();
    }
    out
}

/// Runs `k` full Jacobi relabel rounds and returns the sorted label
/// multiset (device labels then net labels).
fn labels_after(nl: &Netlist, k: usize) -> (Vec<u64>, Vec<u64>) {
    let g = CircuitGraph::new(nl);
    let mut dev: Vec<u64> = nl.device_ids().map(|d| g.initial_device_label(d)).collect();
    let mut net: Vec<u64> = nl.net_ids().map(|n| g.initial_net_label(n)).collect();
    for _ in 0..k {
        let new_net: Vec<u64> = nl
            .net_ids()
            .map(|n| {
                let c = g.net_contribs(n, |d| Some(dev[d.index()]));
                subgemini_netlist::hashing::relabel(net[n.index()], c.sum)
            })
            .collect();
        let new_dev: Vec<u64> = nl
            .device_ids()
            .map(|d| {
                let c = g.device_contribs(d, |n| Some(new_net[n.index()]));
                subgemini_netlist::hashing::relabel(dev[d.index()], c.sum)
            })
            .collect();
        net = new_net;
        dev = new_dev;
    }
    dev.sort_unstable();
    net.sort_unstable();
    (dev, net)
}

/// Swapping pins within a terminal equivalence class never changes
/// any label, at any refinement depth.
#[test]
fn labels_invariant_under_class_swaps() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(0x1abe_1000 + case);
        let (n_nets, devices) = draw_shape(&mut rng, 1, 12);
        let rounds = rng.range(1, 5);
        let a = random_netlist(n_nets, &devices);
        let b = swap_sd(&a);
        assert_eq!(
            labels_after(&a, rounds),
            labels_after(&b, rounds),
            "case {case}"
        );
    }
}

/// Renaming nets and devices never changes the label multiset
/// (labels derive from structure and type names only).
#[test]
fn labels_invariant_under_renaming() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(0x2abe_1000 + case);
        let (n_nets, devices) = draw_shape(&mut rng, 1, 12);
        let a = random_netlist(n_nets, &devices);
        let mut b = Netlist::new("renamed");
        for ty in a.device_types() {
            b.add_type(ty.clone()).unwrap();
        }
        for d in a.device_ids() {
            let dev = a.device(d);
            let pins: Vec<NetId> = dev
                .pins()
                .iter()
                .map(|&n| b.net(format!("zz_{}", a.net_ref(n).name())))
                .collect();
            b.add_device(format!("dev_{}", dev.name()), dev.type_id(), &pins)
                .unwrap();
        }
        // Isolated nets don't exist in b; compact a to align.
        let a = a.compact();
        assert_eq!(labels_after(&a, 3), labels_after(&b, 3), "case {case}");
    }
}

/// `compact` is idempotent and never drops a connected net.
#[test]
fn compact_idempotent() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(0x3abe_1000 + case);
        let n_nets = rng.range(1, 10);
        let n_dev = rng.range(0, 10);
        let devices: Vec<(u8, [usize; 3])> = (0..n_dev)
            .map(|_| {
                (
                    rng.range(0, 3) as u8,
                    [
                        rng.next_u64() as usize,
                        rng.next_u64() as usize,
                        rng.next_u64() as usize,
                    ],
                )
            })
            .collect();
        let a = random_netlist(n_nets, &devices);
        let c1 = a.compact();
        let c2 = c1.compact();
        assert_eq!(c1.net_count(), c2.net_count(), "case {case}");
        assert_eq!(c1.device_count(), a.device_count(), "case {case}");
        for n in c1.net_ids() {
            assert!(c1.net_ref(n).degree() > 0, "case {case}");
        }
        c1.validate().unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}

/// Validation always passes for netlists built through the API.
#[test]
fn api_built_netlists_validate() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(0x4abe_1000 + case);
        let n_nets = rng.range(1, 6);
        let n_dev = rng.range(0, 16);
        let devices: Vec<(u8, [usize; 3])> = (0..n_dev)
            .map(|_| {
                (
                    rng.range(0, 3) as u8,
                    [
                        rng.next_u64() as usize,
                        rng.next_u64() as usize,
                        rng.next_u64() as usize,
                    ],
                )
            })
            .collect();
        let a = random_netlist(n_nets, &devices);
        a.validate().unwrap_or_else(|e| panic!("case {case}: {e}"));
        let stats = subgemini_netlist::NetlistStats::of(&a);
        assert_eq!(stats.devices, devices.len(), "case {case}");
    }
}

/// Distinct terminal classes must produce distinct labels for
/// structurally different wirings: a gate-connected vs a
/// source-connected net differ after one round.
#[test]
fn class_distinction_shows_in_labels() {
    let mut nl = Netlist::new("x");
    let mos = nl.add_mos_types();
    let (a, b, c) = (nl.net("a"), nl.net("b"), nl.net("c"));
    nl.add_device("m", mos.nmos, &[a, b, c]).unwrap();
    let (_, nets) = labels_after(&nl, 1);
    // a (gate) must differ from b/c (s/d); b and c must agree:
    // sorted labels give exactly 2 distinct values.
    let mut uniq = nets.clone();
    uniq.dedup();
    assert_eq!(uniq.len(), 2, "nets={nets:?}");
}
