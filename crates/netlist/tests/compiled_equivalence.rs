//! Equivalence of the compiled CSR snapshot and the legacy
//! [`CircuitGraph`] view: on seeded random netlists the two must agree
//! on every query the labeling engine and the matcher rely on —
//! initial labels, degrees, neighbor multisets (with class
//! multipliers), global/port flags, and contribution sums. The shim is
//! also checked to delegate to the shared snapshot bit-for-bit.

use std::sync::Arc;

use subgemini_netlist::rng::Rng64;
use subgemini_netlist::{CircuitGraph, CompiledCircuit, DeviceType, NetId, Netlist};

/// Builds a random netlist (mos + resistor soup) with some nets marked
/// port and/or global, following the prop_labeling generator idiom.
fn random_netlist(rng: &mut Rng64) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mos = nl.add_mos_types();
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let n_nets = rng.range(2, 9);
    let nets: Vec<NetId> = (0..n_nets).map(|i| nl.net(format!("w{i}"))).collect();
    for &n in &nets {
        match rng.range(0, 5) {
            0 => nl.mark_global(n),
            1 => nl.mark_port(n),
            2 => {
                nl.mark_port(n);
                nl.mark_global(n);
            }
            _ => {}
        }
    }
    let n_dev = rng.range(1, 14);
    for i in 0..n_dev {
        let p = |rng: &mut Rng64| nets[rng.index(nets.len())];
        match rng.range(0, 3) {
            0 => {
                let pins = [p(rng), p(rng), p(rng)];
                nl.add_device(format!("n{i}"), mos.nmos, &pins).unwrap();
            }
            1 => {
                let pins = [p(rng), p(rng), p(rng)];
                nl.add_device(format!("p{i}"), mos.pmos, &pins).unwrap();
            }
            _ => {
                let pins = [p(rng), p(rng)];
                nl.add_device(format!("r{i}"), res, &pins).unwrap();
            }
        }
    }
    nl
}

#[test]
fn compiled_agrees_with_circuit_graph_on_all_queries() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(0xc0de_5000 + case);
        let nl = random_netlist(&mut rng);
        let legacy = CircuitGraph::new(&nl);
        let compiled = CompiledCircuit::compile(&nl);

        assert_eq!(
            compiled.device_count(),
            legacy.device_count(),
            "case {case}"
        );
        assert_eq!(compiled.net_count(), legacy.net_count(), "case {case}");
        assert_eq!(compiled.pin_count(), nl.pin_count(), "case {case}");

        for d in nl.device_ids() {
            assert_eq!(
                compiled.initial_device_label(d),
                legacy.initial_device_label(d),
                "case {case}: device {d:?} initial label"
            );
            assert_eq!(
                compiled.device_degree(d),
                nl.device(d).pins().len(),
                "case {case}"
            );
            // Neighbor multisets with class multipliers.
            let mut a: Vec<(u32, u64)> = compiled
                .device_neighbors(d)
                .map(|(n, w)| (n.raw(), w))
                .collect();
            let mut b: Vec<(u32, u64)> = legacy
                .device_neighbors(d)
                .map(|(n, w)| (n.raw(), w))
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "case {case}: device {d:?} neighbors");
            let ca = compiled.device_contribs(d, |n| Some(n.raw() as u64 + 1));
            let cb = legacy.device_contribs(d, |n| Some(n.raw() as u64 + 1));
            assert_eq!((ca.sum, ca.used, ca.skipped), (cb.sum, cb.used, cb.skipped));
        }

        for n in nl.net_ids() {
            assert_eq!(
                compiled.initial_net_label(n),
                legacy.initial_net_label(n),
                "case {case}: net {n:?} initial label"
            );
            assert_eq!(compiled.net_degree(n), legacy.net_degree(n), "case {case}");
            assert_eq!(compiled.is_global(n), nl.net_ref(n).is_global());
            assert_eq!(compiled.is_port(n), nl.net_ref(n).is_port());
            let mut a: Vec<(u32, u64)> = compiled
                .net_neighbors(n)
                .map(|(d, w)| (d.raw(), w))
                .collect();
            let mut b: Vec<(u32, u64)> =
                legacy.net_neighbors(n).map(|(d, w)| (d.raw(), w)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "case {case}: net {n:?} neighbors");
            let ca = compiled.net_contribs(n, |d| Some(d.raw() as u64 * 3 + 7));
            let cb = legacy.net_contribs(n, |d| Some(d.raw() as u64 * 3 + 7));
            assert_eq!((ca.sum, ca.used, ca.skipped), (cb.sum, cb.used, cb.skipped));
        }

        // Global directory agrees with the netlist.
        for n in nl.net_ids() {
            let net = nl.net_ref(n);
            if net.is_global() {
                assert_eq!(
                    compiled.find_global(net.name()),
                    Some(n),
                    "case {case}: global {} not found",
                    net.name()
                );
            } else {
                assert_eq!(compiled.find_global(net.name()), None, "case {case}");
            }
        }
        assert_eq!(
            compiled.ports().len(),
            nl.net_ids().filter(|&n| nl.net_ref(n).is_port()).count(),
            "case {case}"
        );
    }
}

#[test]
fn shim_and_direct_compilation_share_results() {
    for case in 0..16u64 {
        let mut rng = Rng64::new(0xc0de_6000 + case);
        let nl = random_netlist(&mut rng);
        let shim = CircuitGraph::new(&nl);
        let direct = Arc::new(CompiledCircuit::compile(&nl));
        let wrapped = CircuitGraph::from_compiled(&nl, Arc::clone(&direct));
        for n in nl.net_ids() {
            assert_eq!(shim.initial_net_label(n), direct.initial_net_label(n));
            assert_eq!(wrapped.net_degree(n), shim.net_degree(n));
        }
        for d in nl.device_ids() {
            assert_eq!(
                shim.initial_device_label(d),
                wrapped.initial_device_label(d)
            );
        }
    }
}
