//! Fuzz-style corruption battery for the `.sgc` decoder: every
//! truncation, every header bit flip, seeded body bit flips, version
//! bumps, and trailing garbage must produce a structured
//! [`ArtifactError`] — never a panic, and never a silently wrong
//! decode. A successful decode is only ever the byte-identical
//! artifact.

use subgemini_netlist::rng::Rng64;
use subgemini_netlist::{Artifact, ArtifactError, DeviceType, Netlist};

const HEADER_LEN: usize = 32;

/// A small but fully featured subject: mos + resistor types, a global
/// rail, ports, multi-pin devices.
fn subject() -> Netlist {
    let mut nl = Netlist::new("subject");
    let mos = nl.add_mos_types();
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let (a, b, y, w) = (nl.net("a"), nl.net("b"), nl.net("y"), nl.net("w"));
    let (vdd, gnd) = (nl.net("vdd"), nl.net("gnd"));
    nl.mark_port(a);
    nl.mark_port(b);
    nl.mark_port(y);
    nl.mark_global(vdd);
    nl.mark_global(gnd);
    nl.add_device("mp1", mos.pmos, &[y, vdd, a]).unwrap();
    nl.add_device("mp2", mos.pmos, &[y, vdd, b]).unwrap();
    nl.add_device("mn1", mos.nmos, &[y, w, a]).unwrap();
    nl.add_device("mn2", mos.nmos, &[w, gnd, b]).unwrap();
    nl.add_device("r1", res, &[y, w]).unwrap();
    nl
}

#[test]
fn pristine_bytes_decode_to_the_identical_artifact() {
    let artifact = Artifact::build(&subject());
    let bytes = artifact.encode();
    let decoded = Artifact::decode(&bytes).expect("pristine bytes decode");
    assert_eq!(decoded, artifact, "decode must be byte-faithful");
}

#[test]
fn every_truncation_prefix_is_a_structured_error() {
    let bytes = Artifact::build(&subject()).encode();
    for len in 0..bytes.len() {
        let err = Artifact::decode(&bytes[..len])
            .expect_err(&format!("prefix of {len} bytes must not decode"));
        // Any error variant is acceptable; reaching here proves no
        // panic and no bogus success. Truncations inside the header or
        // payload must surface as Truncated specifically.
        if len < HEADER_LEN {
            assert!(
                matches!(err, ArtifactError::Truncated { .. }),
                "header prefix {len}: got {err}"
            );
        }
    }
}

#[test]
fn every_header_bit_flip_is_rejected() {
    let artifact = Artifact::build(&subject());
    let bytes = artifact.encode();
    for byte in 0..HEADER_LEN {
        for bit in 0..8 {
            let mut m = bytes.clone();
            m[byte] ^= 1 << bit;
            let res = Artifact::decode(&m);
            assert!(
                res.is_err(),
                "header byte {byte} bit {bit}: corrupt header decoded"
            );
            // Field-targeted taxonomy: magic, version, flags, length,
            // checksum each answer with their own variant.
            let err = res.unwrap_err();
            match byte {
                0..=7 => assert!(matches!(err, ArtifactError::BadMagic), "byte {byte}: {err}"),
                8..=11 => assert!(
                    matches!(err, ArtifactError::UnsupportedVersion(_)),
                    "byte {byte}: {err}"
                ),
                12..=15 => assert!(
                    matches!(err, ArtifactError::UnsupportedFlags(_)),
                    "byte {byte}: {err}"
                ),
                16..=23 => assert!(
                    matches!(
                        err,
                        ArtifactError::Truncated { .. } | ArtifactError::Malformed(_)
                    ),
                    "byte {byte} (payload_len): {err}"
                ),
                _ => assert!(
                    matches!(err, ArtifactError::ChecksumMismatch { .. }),
                    "byte {byte} (checksum): {err}"
                ),
            }
        }
    }
}

#[test]
fn seeded_body_bit_flips_never_panic_and_never_decode() {
    let bytes = Artifact::build(&subject()).encode();
    let body_len = bytes.len() - HEADER_LEN;
    let mut rng = Rng64::new(0xf1ee_0001);
    for trial in 0..512 {
        let mut m = bytes.clone();
        let byte = HEADER_LEN + rng.index(body_len);
        let bit = rng.index(8);
        m[byte] ^= 1 << bit;
        let res = Artifact::decode(&m);
        assert!(
            matches!(res, Err(ArtifactError::ChecksumMismatch { .. })),
            "trial {trial}: flip at byte {byte} bit {bit} must fail the checksum, got {res:?}"
        );
    }
}

#[test]
fn multi_flip_and_splice_mutations_are_structured_errors() {
    // Heavier mutations than single flips: random splices, byte
    // overwrites, and duplicated ranges. The decoder may reject them
    // with any variant; it must not panic or mis-decode.
    let artifact = Artifact::build(&subject());
    let bytes = artifact.encode();
    let mut rng = Rng64::new(0xf1ee_0002);
    for trial in 0..256 {
        let mut m = bytes.clone();
        match rng.range(0, 3) {
            0 => {
                // Overwrite a random run with random bytes.
                let start = rng.index(m.len());
                let len = rng.range(1, 16).min(m.len() - start);
                for b in &mut m[start..start + len] {
                    *b = rng.next_u64() as u8;
                }
            }
            1 => {
                // Duplicate a range onto another position.
                let src = rng.index(m.len());
                let dst = rng.index(m.len());
                let len = rng.range(1, 16).min(m.len() - src).min(m.len() - dst);
                let chunk: Vec<u8> = m[src..src + len].to_vec();
                m[dst..dst + len].copy_from_slice(&chunk);
            }
            _ => {
                // Truncate then append garbage.
                let keep = rng.index(m.len());
                m.truncate(keep);
                for _ in 0..rng.range(0, 16) {
                    m.push(rng.next_u64() as u8);
                }
            }
        }
        // Any structured error is fine — reaching the match at all
        // proves no panic happened.
        if let Ok(decoded) = Artifact::decode(&m) {
            assert_eq!(
                decoded, artifact,
                "trial {trial}: a successful decode must be the identity"
            );
        }
    }
}

#[test]
fn version_bump_is_rejected_with_the_version_variant() {
    let bytes = Artifact::build(&subject()).encode();
    for version in [0u32, 2, 3, u32::MAX] {
        let mut m = bytes.clone();
        m[8..12].copy_from_slice(&version.to_le_bytes());
        match Artifact::decode(&m) {
            Err(ArtifactError::UnsupportedVersion(v)) => assert_eq!(v, version),
            other => panic!("version {version}: expected UnsupportedVersion, got {other:?}"),
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = Artifact::build(&subject()).encode();
    bytes.extend_from_slice(b"extra");
    assert!(
        matches!(Artifact::decode(&bytes), Err(ArtifactError::Malformed(_))),
        "trailing bytes must be rejected, not ignored"
    );
}

#[test]
fn checksum_valid_but_inconsistent_payload_is_rejected() {
    // Re-checksumming a mutated payload defeats the integrity check;
    // the structural revalidation layer must still refuse to produce a
    // snapshot that disagrees with a fresh compile. Flip one byte deep
    // in the payload, fix the checksum, and require Malformed (or a
    // decode identical to the original if the flip was immaterial —
    // which it never is for single payload bytes here).
    let artifact = Artifact::build(&subject());
    let bytes = artifact.encode();
    let mut rng = Rng64::new(0xf1ee_0003);
    let mut rejected = 0usize;
    for _ in 0..256 {
        let mut m = bytes.clone();
        let body_len = m.len() - HEADER_LEN;
        let byte = HEADER_LEN + rng.index(body_len);
        m[byte] ^= 1 << rng.index(8);
        // Recompute the checksum over the mutated payload the same way
        // the encoder does (FNV-1a folded through the mixer), copied
        // here so the test does not depend on a crate-private helper.
        let payload = &m[HEADER_LEN..];
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in payload {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let fixed = {
            // SplitMix64 finalizer, as in hashing::mix.
            let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        m[24..32].copy_from_slice(&fixed.to_le_bytes());
        match Artifact::decode(&m) {
            Ok(decoded) => {
                // Revalidation pins the circuit and the index to a
                // fresh compile; the only field a checksum-fixed flip
                // can legally alter is the free-standing source digest
                // (opaque metadata — a wrong digest makes warm starts
                // miss, it cannot corrupt results).
                assert_eq!(decoded.circuit, artifact.circuit, "circuit diverged");
                assert_eq!(decoded.index, artifact.index, "index diverged");
                assert!(
                    byte < HEADER_LEN + 8,
                    "flip at byte {byte} outside the digest field decoded successfully"
                );
            }
            Err(ArtifactError::ChecksumMismatch { .. }) => {
                panic!("checksum was recomputed; mismatch means the test's mirror drifted")
            }
            Err(_) => rejected += 1,
        }
    }
    assert!(
        rejected > 0,
        "at least some checksum-fixed mutations must reach structural validation"
    );
}
