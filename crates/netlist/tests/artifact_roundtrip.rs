//! Round-trip property battery for `.sgc` artifacts: on a seeded
//! random corpus, `encode` → `decode` must reproduce the compiled
//! snapshot exactly — structurally equal, identical on every query the
//! labeling engine relies on (the `compiled_equivalence.rs`
//! checklist), with an identical fingerprint index and source digest.

use subgemini_netlist::rng::Rng64;
use subgemini_netlist::{
    structural_digest, Artifact, CompiledCircuit, DeviceType, FingerprintIndex, NetId, Netlist,
};

/// Builds a random netlist (mos + resistor soup) with some nets marked
/// port and/or global, following the compiled_equivalence generator
/// idiom.
fn random_netlist(rng: &mut Rng64) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mos = nl.add_mos_types();
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let n_nets = rng.range(2, 9);
    let nets: Vec<NetId> = (0..n_nets).map(|i| nl.net(format!("w{i}"))).collect();
    for &n in &nets {
        match rng.range(0, 5) {
            0 => nl.mark_global(n),
            1 => nl.mark_port(n),
            2 => {
                nl.mark_port(n);
                nl.mark_global(n);
            }
            _ => {}
        }
    }
    let n_dev = rng.range(1, 14);
    for i in 0..n_dev {
        let p = |rng: &mut Rng64| nets[rng.index(nets.len())];
        match rng.range(0, 3) {
            0 => {
                let pins = [p(rng), p(rng), p(rng)];
                nl.add_device(format!("n{i}"), mos.nmos, &pins).unwrap();
            }
            1 => {
                let pins = [p(rng), p(rng), p(rng)];
                nl.add_device(format!("p{i}"), mos.pmos, &pins).unwrap();
            }
            _ => {
                let pins = [p(rng), p(rng)];
                nl.add_device(format!("r{i}"), res, &pins).unwrap();
            }
        }
    }
    nl
}

/// Asserts the full query battery between a decoded snapshot and a
/// freshly compiled one.
fn assert_queries_identical(case: u64, fresh: &CompiledCircuit, decoded: &CompiledCircuit) {
    assert_eq!(decoded.device_count(), fresh.device_count(), "case {case}");
    assert_eq!(decoded.net_count(), fresh.net_count(), "case {case}");
    assert_eq!(decoded.pin_count(), fresh.pin_count(), "case {case}");
    for i in 0..fresh.device_count() {
        let d = subgemini_netlist::DeviceId::new(i as u32);
        assert_eq!(
            decoded.initial_device_label(d),
            fresh.initial_device_label(d),
            "case {case}: device {i} initial label"
        );
        assert_eq!(decoded.device_degree(d), fresh.device_degree(d));
        let a: Vec<(u32, u64)> = decoded
            .device_neighbors(d)
            .map(|(n, w)| (n.raw(), w))
            .collect();
        let b: Vec<(u32, u64)> = fresh
            .device_neighbors(d)
            .map(|(n, w)| (n.raw(), w))
            .collect();
        assert_eq!(a, b, "case {case}: device {i} neighbors");
        let ca = decoded.device_contribs(d, |n| Some(n.raw() as u64 + 1));
        let cb = fresh.device_contribs(d, |n| Some(n.raw() as u64 + 1));
        assert_eq!((ca.sum, ca.used, ca.skipped), (cb.sum, cb.used, cb.skipped));
    }
    for i in 0..fresh.net_count() {
        let n = NetId::new(i as u32);
        assert_eq!(
            decoded.initial_net_label(n),
            fresh.initial_net_label(n),
            "case {case}: net {i} initial label"
        );
        assert_eq!(decoded.net_degree(n), fresh.net_degree(n));
        assert_eq!(decoded.is_global(n), fresh.is_global(n));
        assert_eq!(decoded.is_port(n), fresh.is_port(n));
        let a: Vec<(u32, u64)> = decoded
            .net_neighbors(n)
            .map(|(d, w)| (d.raw(), w))
            .collect();
        let b: Vec<(u32, u64)> = fresh.net_neighbors(n).map(|(d, w)| (d.raw(), w)).collect();
        assert_eq!(a, b, "case {case}: net {i} neighbors");
        let ca = decoded.net_contribs(n, |d| Some(d.raw() as u64 * 3 + 7));
        let cb = fresh.net_contribs(n, |d| Some(d.raw() as u64 * 3 + 7));
        assert_eq!((ca.sum, ca.used, ca.skipped), (cb.sum, cb.used, cb.skipped));
    }
    assert_eq!(decoded.ports(), fresh.ports(), "case {case}: ports");
}

#[test]
fn encode_decode_reproduces_the_snapshot_on_a_seeded_corpus() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(0xa57f_1000 + case);
        let nl = random_netlist(&mut rng);
        let artifact = Artifact::build(&nl);
        let bytes = artifact.encode();
        let decoded = Artifact::decode(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: fresh artifact failed to decode: {e}"));

        // Whole-value equality (CompiledCircuit and FingerprintIndex
        // are PartialEq over every field), then the query battery —
        // equality of representation and equality of observable
        // behavior are pinned independently.
        assert_eq!(decoded, artifact, "case {case}");
        assert_eq!(decoded.source_digest, structural_digest(&nl), "case {case}");

        let fresh = CompiledCircuit::compile(&nl);
        assert_queries_identical(case, &fresh, &decoded.circuit);
        assert_eq!(
            decoded.index,
            FingerprintIndex::build(&fresh),
            "case {case}: index"
        );

        // Globals directory survives (sorted by name in the snapshot).
        for i in 0..nl.net_count() {
            let n = NetId::new(i as u32);
            let net = nl.net_ref(n);
            let expect = net.is_global().then_some(n);
            assert_eq!(
                decoded.circuit.find_global(net.name()),
                expect,
                "case {case}: global lookup {}",
                net.name()
            );
        }

        // Encoding is deterministic: same artifact, same bytes.
        assert_eq!(bytes, decoded.encode(), "case {case}: re-encode differs");
    }
}

#[test]
fn file_round_trip_matches_in_memory_round_trip() {
    let dir = std::env::temp_dir().join("sgc_roundtrip_test");
    std::fs::create_dir_all(&dir).unwrap();
    for case in 0..8u64 {
        let mut rng = Rng64::new(0xa57f_2000 + case);
        let nl = random_netlist(&mut rng);
        let artifact = Artifact::build(&nl);
        let path = dir.join(format!("case{case}.sgc"));
        artifact.save(&path).unwrap();
        let loaded = Artifact::load(&path).unwrap();
        assert_eq!(loaded, artifact, "case {case}");
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn digest_tracks_every_structural_facet() {
    // Mutating any facet the matcher can observe must change the
    // digest: device order, pin wiring, type, global/port marks, names
    // of globals.
    let build = |f: &dyn Fn(&mut Netlist)| {
        let mut nl = Netlist::new("t");
        let mos = nl.add_mos_types();
        let (a, b, vdd) = (nl.net("a"), nl.net("b"), nl.net("vdd"));
        nl.mark_global(vdd);
        nl.mark_port(a);
        nl.add_device("m0", mos.nmos, &[a, b, vdd]).unwrap();
        nl.add_device("m1", mos.pmos, &[b, vdd, a]).unwrap();
        f(&mut nl);
        structural_digest(&nl)
    };
    let base = build(&|_| {});
    assert_eq!(base, build(&|_| {}), "digest is deterministic");
    assert_ne!(
        base,
        build(&|nl| {
            let c = nl.net("c");
            nl.mark_port(c);
        }),
        "extra port changes the digest"
    );
    assert_ne!(
        base,
        build(&|nl| {
            let b = nl.net("b");
            nl.mark_global(b);
        }),
        "global mark changes the digest"
    );
    assert_ne!(
        base,
        build(&|nl| {
            let mos = nl.add_mos_types();
            let (a, b) = (nl.net("a"), nl.net("b"));
            nl.add_device("m2", mos.nmos, &[a, b, b]).unwrap();
        }),
        "extra device changes the digest"
    );
}
