//! End-to-end tests driving the `subg` binary.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn subg(dir: &std::path::Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_subg"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("binary runs")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("subg_cli_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

const CELLS: &str = "\
.global vdd gnd
.subckt inv a y
mp y a vdd vdd pmos
mn y a gnd gnd nmos
.ends
.subckt nand2 a b y
mp1 y a vdd vdd pmos
mp2 y b vdd vdd pmos
mn1 mid a y gnd nmos
mn2 gnd b mid gnd nmos
.ends
";

const CHIP: &str = "\
.global vdd gnd
mq1p w0 in vdd vdd pmos
mq1n w0 in gnd gnd nmos
mq2p w1 w0 vdd vdd pmos
mq2n w1 w0 gnd gnd nmos
mg1 out w1 vdd vdd pmos
mg2 out en vdd vdd pmos
mg3 m1 w1 out gnd nmos
mg4 gnd en m1 gnd nmos
";

fn write_files(dir: &std::path::Path) {
    fs::write(dir.join("cells.sp"), CELLS).unwrap();
    fs::write(dir.join("chip.sp"), CHIP).unwrap();
}

#[test]
fn find_reports_instances_and_exit_codes() {
    let dir = scratch("find");
    write_files(&dir);
    let out = subg(
        &dir,
        &["find", "chip.sp", "--pattern", "inv", "--lib", "cells.sp"],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 instance(s)"), "{stdout}");

    // A pattern with no instances exits 1.
    let none = fs::read_to_string(dir.join("cells.sp")).unwrap()
        + ".subckt nor2 a b y\nmp1 m a vdd vdd pmos\nmp2 y b m vdd pmos\nmn1 y a gnd gnd nmos\nmn2 y b gnd gnd nmos\n.ends\n";
    fs::write(dir.join("cells.sp"), none).unwrap();
    let out = subg(
        &dir,
        &["find", "chip.sp", "--pattern", "nor2", "--lib", "cells.sp"],
    );
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn find_csv_mode() {
    let dir = scratch("csv");
    write_files(&dir);
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "nand2",
            "--lib",
            "cells.sp",
            "--csv",
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("instance,devices"), "{stdout}");
    assert!(stdout.contains("mg1"), "{stdout}");
}

#[test]
fn candidates_lists_cv() {
    let dir = scratch("cand");
    write_files(&dir);
    let out = subg(
        &dir,
        &[
            "candidates",
            "chip.sp",
            "--pattern",
            "nand2",
            "--lib",
            "cells.sp",
        ],
    );
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("key vertex"), "{stdout}");
}

#[test]
fn extract_emits_hierarchical_deck() {
    let dir = scratch("extract");
    write_files(&dir);
    let out = subg(
        &dir,
        &[
            "extract", "chip.sp", "--lib", "cells.sp", "--out", "gates.sp",
        ],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unabsorbed devices: 0"), "{stdout}");
    let deck = fs::read_to_string(dir.join("gates.sp")).unwrap();
    assert!(deck.contains(".subckt inv"), "{deck}");
    assert!(deck.contains("nand2"), "{deck}");
}

#[test]
fn check_flags_rule_hits() {
    let dir = scratch("check");
    write_files(&dir);
    fs::write(
        dir.join("rules.sp"),
        ".global vdd\n.subckt nmos_pullup g d\nm1 d g vdd vdd nmos\n.ends\n",
    )
    .unwrap();
    // chip.sp has no nmos pull-ups: exit 0, zero violations.
    let out = subg(&dir, &["check", "chip.sp", "--rules", "rules.sp"]);
    assert_eq!(out.status.code(), Some(0));
    // Add an offending transistor.
    let mut chip = CHIP.to_string();
    chip.push_str("mbad q en vdd vdd nmos\n");
    fs::write(dir.join("bad.sp"), chip).unwrap();
    let out = subg(&dir, &["check", "bad.sp", "--rules", "rules.sp"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mbad"), "{stdout}");
}

#[test]
fn compare_distinguishes_netlists() {
    let dir = scratch("cmp");
    write_files(&dir);
    fs::write(dir.join("chip2.sp"), CHIP).unwrap();
    let out = subg(&dir, &["compare", "chip.sp", "chip2.sp"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("isomorphic"));
    let mut other = CHIP.to_string();
    other.push_str("mextra z en gnd gnd nmos\n");
    fs::write(dir.join("chip3.sp"), other).unwrap();
    let out = subg(&dir, &["compare", "chip.sp", "chip3.sp"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn hierarchical_compare_localizes_the_edit() {
    let dir = scratch("hcmp");
    let deck_a = format!("{CELLS}Xu1 in w0 inv\nXu2 w0 out inv\n");
    // B edits only the nand2 cell (swaps a pull-down to a pull-up).
    let deck_b = deck_a.replace("mn2 gnd b mid gnd nmos", "mn2 vdd b mid gnd nmos");
    fs::write(dir.join("a.sp"), &deck_a).unwrap();
    fs::write(dir.join("b.sp"), &deck_b).unwrap();
    let out = subg(&dir, &["compare", "a.sp", "b.sp", "--hierarchical"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The inverter and the top are untouched; only nand2 is flagged.
    assert!(stdout.contains("cell inv              ok"), "{stdout}");
    assert!(stdout.contains("cell nand2            DIFFERS"), "{stdout}");
    assert!(stdout.contains("top              ok"), "{stdout}");
    assert!(stdout.contains("1 difference(s)"), "{stdout}");

    // Identical decks: all ok, exit 0, and the rendering contract is
    // byte-exact — the CLI delegates to `subgemini_suite::hier` and
    // must keep producing the historical output.
    fs::write(dir.join("c.sp"), &deck_a).unwrap();
    let out = subg(&dir, &["compare", "a.sp", "c.sp", "--hierarchical"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "cell inv              ok\n\
         cell nand2            ok\n\
         top              ok\n\
         0 difference(s)\n"
    );
}

#[test]
fn stats_and_map_run() {
    let dir = scratch("misc");
    write_files(&dir);
    let out = subg(&dir, &["stats", "chip.sp"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("8 devices"));
    let out = subg(&dir, &["map", "chip.sp", "--lib", "cells.sp"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("total cost"), "{stdout}");
}

#[test]
fn dot_export_and_includes() {
    let dir = scratch("dot");
    // Split cells into an included file to exercise .include.
    fs::write(dir.join("cells.sp"), CELLS).unwrap();
    let chip_with_include = format!(".include cells.sp\n{CHIP}");
    fs::write(dir.join("chip.sp"), chip_with_include).unwrap();
    let out = subg(&dir, &["dot", "chip.sp", "--out", "chip.dot"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dot = fs::read_to_string(dir.join("chip.dot")).unwrap();
    assert!(dot.starts_with("graph"));
    assert!(dot.contains("shape=box"));
    // The included subckts are definitions, not instances: 8 devices.
    assert_eq!(dot.matches("shape=box").count(), 8, "{dot}");
}

#[test]
fn verilog_files_work_end_to_end() {
    let dir = scratch("verilog");
    fs::write(
        dir.join("lib.v"),
        "module and_shape(input a, b, output y);\n  wire w;\n  nand g1(w, a, b);\n  not g2(y, w);\nendmodule\n",
    )
    .unwrap();
    fs::write(
        dir.join("chip.v"),
        "module chip(input a, b, c, output y);\n  wire w1, w2, w3;\n  nand g1(w1, a, b);\n  nand g2(w2, b, c);\n  nand g3(w3, w1, w2);\n  not g4(y, w3);\nendmodule\n",
    )
    .unwrap();
    let out = subg(
        &dir,
        &["find", "chip.v", "--pattern", "and_shape", "--lib", "lib.v"],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 instance(s)"), "{stdout}");
    assert!(stdout.contains("g3 g4"), "{stdout}");

    // Cross-format: SPICE main, Verilog pattern is also fine per-file.
    let out = subg(&dir, &["stats", "chip.v"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("4 devices"));

    // Hierarchical Verilog compare.
    fs::write(
        dir.join("chip2.v"),
        fs::read_to_string(dir.join("chip.v")).unwrap(),
    )
    .unwrap();
    let out = subg(&dir, &["compare", "chip.v", "chip2.v", "--hierarchical"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn survey_and_trace_subcommands() {
    let dir = scratch("survey");
    write_files(&dir);
    let out = subg(&dir, &["survey", "chip.sp", "--lib", "cells.sp"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("inv"), "{stdout}");
    assert!(stdout.contains("nand2"), "{stdout}");

    let out = subg(
        &dir,
        &[
            "trace",
            "chip.sp",
            "--pattern",
            "nand2",
            "--lib",
            "cells.sp",
        ],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("KV"), "{stdout}");
    assert!(stdout.contains("pass 1"), "{stdout}");
}

#[test]
fn find_report_json_schema_is_stable_and_consistent() {
    use subgemini::metrics::json::Value;
    let dir = scratch("report");
    write_files(&dir);
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--report",
            "json",
            "--threads",
            "2",
        ],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let v = subgemini::metrics::json::parse(&stdout).expect("stdout is valid JSON");

    // Top-level schema contract.
    for field in [
        "schema_version",
        "instances",
        "matched_device_total",
        "key",
        "phase1",
        "phase2",
        "metrics",
    ] {
        assert!(v.get(field).is_some(), "missing `{field}` in {stdout}");
    }
    assert_eq!(v.get("schema_version").unwrap().as_u64(), Some(1));
    let instances = v.get("instances").unwrap().as_u64().unwrap();
    assert_eq!(instances, 2, "{stdout}");
    assert_eq!(
        v.get("matched_device_total").unwrap().as_u64(),
        Some(4),
        "{stdout}"
    );

    let p1 = v.get("phase1").unwrap();
    let cv_size = p1.get("cv_size").unwrap().as_u64().unwrap();
    let p2 = v.get("phase2").unwrap();
    let tried = p2.get("candidates_tried").unwrap().as_u64().unwrap();
    let false_c = p2.get("false_candidates").unwrap().as_u64().unwrap();
    assert!(tried <= cv_size, "tried {tried} > |CV| {cv_size}");
    assert!(false_c <= tried);
    let rate = p2.get("false_candidate_rate").unwrap().as_f64().unwrap();
    assert!((0.0..=1.0).contains(&rate));

    // Metrics present (the report forces collection) and consistent.
    let m = v.get("metrics").unwrap();
    assert!(!matches!(m, Value::Null), "metrics null despite --report");
    let total = m.get("total_ns").unwrap().as_u64().unwrap();
    let wall = m.get("phase2_wall_ns").unwrap().as_u64().unwrap();
    let refine = m.get("phase1_refine_ns").unwrap().as_u64().unwrap();
    let select = m.get("phase1_select_ns").unwrap().as_u64().unwrap();
    assert!(total >= wall + refine + select, "{stdout}");
    let max_cand = m.get("phase2_max_candidate_ns").unwrap().as_u64().unwrap();
    let busy: u64 = m
        .get("worker_busy_ns")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|b| b.as_u64().unwrap())
        .sum();
    assert_eq!(m.get("phase2_verify_ns").unwrap().as_u64(), Some(busy));
    assert!(max_cand <= busy.max(1), "{stdout}");
    let util = m.get("worker_utilization").unwrap().as_f64().unwrap();
    assert!((0.0..=1.0).contains(&util));
    let threads = m.get("threads_used").unwrap().as_u64().unwrap();
    assert!((1..=2).contains(&threads), "{stdout}");

    let counters = m.get("counters").unwrap();
    assert_eq!(
        counters.get("instances.reported").unwrap().as_u64(),
        Some(instances)
    );
    let checked = counters
        .get("candidates.checked")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(checked <= cv_size);
    let matched = counters
        .get("candidates.matched")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(matched >= instances && matched <= checked);

    // Text mode: human-readable timing block instead of JSON.
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--report",
            "text",
        ],
    );
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("timings: total"), "{stdout}");
    assert!(stdout.contains("counter candidates.checked"), "{stdout}");

    // Zero matches still reports (exit 1), and a bogus mode is usage
    // error (exit 2).
    fs::write(
        dir.join("none.sp"),
        ".global vdd\n.subckt pup g d\nm1 d g vdd vdd nmos\n.ends\n",
    )
    .unwrap();
    let cells = fs::read_to_string(dir.join("cells.sp")).unwrap()
        + ".subckt pup g d\nm1 d g vdd vdd nmos\n.ends\n";
    fs::write(dir.join("cells.sp"), cells).unwrap();
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "pup",
            "--lib",
            "cells.sp",
            "--report",
            "json",
        ],
    );
    assert_eq!(out.status.code(), Some(1));
    let v = subgemini::metrics::json::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(v.get("instances").unwrap().as_u64(), Some(0));
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--report",
            "yaml",
        ],
    );
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--report"));
}

#[test]
fn find_trace_out_and_explain() {
    let dir = scratch("traceout");
    write_files(&dir);
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--trace-out",
            "trace.json",
            "--events-out",
            "events.ndjson",
            "--explain",
        ],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("explain:"), "{stdout}");

    // The exported trace is a valid Chrome traceEvents document.
    let text = fs::read_to_string(dir.join("trace.json")).unwrap();
    let doc = subgemini::metrics::json::parse(&text).expect("trace parses");
    let n = subgemini::events::validate_chrome_trace(&doc).expect("trace validates");
    assert!(n > 0);

    // NDJSON: every line parses, trailer closes the stream.
    let ndjson = fs::read_to_string(dir.join("events.ndjson")).unwrap();
    let lines: Vec<&str> = ndjson.lines().collect();
    assert!(lines.len() > 1);
    for line in &lines {
        subgemini::metrics::json::parse(line).unwrap_or_else(|e| panic!("`{line}`: {e}"));
    }
    assert!(lines.last().unwrap().contains("journal_end"));
}

#[test]
fn explain_subcommand_names_reject_reasons() {
    let dir = scratch("explain");
    write_files(&dir);
    // A matching pattern explains itself with instance counts.
    let out = subg(
        &dir,
        &[
            "explain",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
        ],
    );
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 instance(s)"), "{stdout}");

    // A no-match pattern names the first divergence; --json emits the
    // machine-readable report instead.
    let cells = fs::read_to_string(dir.join("cells.sp")).unwrap()
        + ".subckt pup g d\nm1 d g vdd vdd nmos\n.ends\n";
    fs::write(dir.join("cells.sp"), cells).unwrap();
    let out = subg(
        &dir,
        &[
            "explain",
            "chip.sp",
            "--pattern",
            "pup",
            "--lib",
            "cells.sp",
        ],
    );
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 instance(s)"), "{stdout}");
    assert!(stdout.contains("first divergence"), "{stdout}");
    let out = subg(
        &dir,
        &[
            "explain",
            "chip.sp",
            "--pattern",
            "pup",
            "--lib",
            "cells.sp",
            "--json",
        ],
    );
    assert_eq!(out.status.code(), Some(1));
    let v = subgemini::metrics::json::parse(&String::from_utf8(out.stdout).unwrap())
        .expect("explain --json is valid JSON");
    assert_eq!(v.get("instances").unwrap().as_u64(), Some(0));
    assert!(v.get("first_divergence").is_some());
}

#[test]
fn usage_on_no_args_and_unknown_command() {
    let dir = scratch("usage");
    let out = subg(&dir, &[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
    let out = subg(&dir, &["bogus"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn fingerprint_groups_duplicate_cells() {
    let dir = scratch("fp");
    let cells =
        format!("{CELLS}.subckt inv_copy x z\nmp z x vdd vdd pmos\nmn z x gnd gnd nmos\n.ends\n");
    fs::write(dir.join("cells.sp"), cells).unwrap();
    let out = subg(&dir, &["fingerprint", "cells.sp"]);
    assert_eq!(out.status.code(), Some(1), "duplicates found -> exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("duplicates: inv == inv_copy"), "{stdout}");
    assert!(stdout.contains("1 duplicate group(s)"), "{stdout}");
}

#[test]
fn find_zero_deadline_reports_truncation_with_success_exit() {
    let dir = scratch("deadline");
    write_files(&dir);
    // A zero deadline expires before any search work: still exit 0,
    // with the truncation spelled out in the JSON report.
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--deadline-ms",
            "0",
            "--report",
            "json",
        ],
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"completeness\": \"truncated\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"reason\": \"deadline_expired\""),
        "{stdout}"
    );

    // The human report calls out the truncation too.
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--deadline-ms",
            "0",
        ],
    );
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("truncated"), "{stdout}");
}

#[test]
fn find_fail_fast_turns_truncation_into_exit_3() {
    let dir = scratch("failfast");
    write_files(&dir);
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--deadline-ms",
            "0",
            "--fail-fast",
        ],
    );
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Without truncation, --fail-fast changes nothing.
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--fail-fast",
        ],
    );
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 instance(s)"), "{stdout}");
}

#[test]
fn find_budgeted_but_complete_run_reports_complete() {
    let dir = scratch("budget_complete");
    write_files(&dir);
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--max-effort",
            "1000000",
            "--report",
            "json",
        ],
    );
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"completeness\": \"complete\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"truncation\": null"), "{stdout}");
}

#[test]
fn find_rejects_malformed_budget_values() {
    let dir = scratch("budget_bad");
    write_files(&dir);
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--max-effort",
            "lots",
        ],
    );
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--max-effort"), "{stderr}");
}

#[test]
fn compile_writes_an_artifact_and_warm_find_matches_cold() {
    let dir = scratch("compile");
    write_files(&dir);
    let out = subg(&dir, &["compile", "chip.sp"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chip.sgc"), "{stdout}");
    assert!(stdout.contains("device(s)"), "{stdout}");
    assert!(stdout.contains("digest "), "{stdout}");
    assert!(dir.join("chip.sgc").exists());

    // With pruning off, a warm find must print exactly what the cold
    // find prints; with the default `--prune auto` the warm index may
    // legitimately shrink the Phase II stats line, but the instance
    // lines must not move.
    let cold = subg(
        &dir,
        &["find", "chip.sp", "--pattern", "inv", "--lib", "cells.sp"],
    );
    let warm = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--artifact",
            "chip.sgc",
            "--prune",
            "never",
        ],
    );
    assert!(warm.status.success());
    assert_eq!(cold.stdout, warm.stdout, "warm output diverges from cold");
    let warm_auto = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--artifact",
            "chip.sgc",
        ],
    );
    assert!(warm_auto.status.success());
    let instances = |out: &Output| -> Vec<String> {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.starts_with("phase"))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(
        instances(&cold),
        instances(&warm_auto),
        "pruning moved the instance list"
    );
}

#[test]
fn compile_honors_an_explicit_out_path() {
    let dir = scratch("compile_out");
    write_files(&dir);
    let out = subg(&dir, &["compile", "chip.sp", "--out", "snap.sgc"]);
    assert!(out.status.success());
    assert!(dir.join("snap.sgc").exists());
    assert!(!dir.join("chip.sgc").exists());
}

#[test]
fn artifact_failures_are_usage_errors() {
    let dir = scratch("artifact_err");
    write_files(&dir);
    subg(&dir, &["compile", "chip.sp"]);

    // Truncated artifact: structured load error, exit 2.
    let bytes = fs::read(dir.join("chip.sgc")).unwrap();
    fs::write(dir.join("cut.sgc"), &bytes[..bytes.len() / 2]).unwrap();
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--artifact",
            "cut.sgc",
        ],
    );
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("truncated"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Artifact compiled from a different circuit: digest refusal.
    fs::write(dir.join("other.sp"), "mx a b vdd vdd pmos\n").unwrap();
    subg(&dir, &["compile", "other.sp"]);
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--artifact",
            "other.sgc",
        ],
    );
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("different circuit"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --artifact contradicts --ignore-globals.
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--artifact",
            "chip.sgc",
            "--ignore-globals",
        ],
    );
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--ignore-globals"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn survey_accepts_a_warm_artifact() {
    let dir = scratch("survey_warm");
    write_files(&dir);
    subg(&dir, &["compile", "chip.sp"]);
    let cold = subg(&dir, &["survey", "chip.sp", "--lib", "cells.sp"]);
    let warm = subg(
        &dir,
        &[
            "survey",
            "chip.sp",
            "--lib",
            "cells.sp",
            "--artifact",
            "chip.sgc",
        ],
    );
    assert!(
        warm.status.success(),
        "{}",
        String::from_utf8_lossy(&warm.stderr)
    );
    assert_eq!(cold.stdout, warm.stdout);
}

#[test]
fn find_rejects_an_unknown_prune_policy() {
    let dir = scratch("prune_bad");
    write_files(&dir);
    let out = subg(
        &dir,
        &[
            "find",
            "chip.sp",
            "--pattern",
            "inv",
            "--lib",
            "cells.sp",
            "--prune",
            "sometimes",
        ],
    );
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--prune"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn hierarchize_reconstructs_levels_end_to_end() {
    let dir = scratch("hierz");
    // Library with a genuine level-2 cell: xor2 built from nand2s.
    let cells = format!(
        "{CELLS}.subckt xor2 a b y\n\
         Xn1 a b n1 nand2\n\
         Xn2 a n1 n2 nand2\n\
         Xn3 b n1 n3 nand2\n\
         Xn4 n2 n3 y nand2\n\
         .ends\n"
    );
    // A flat top: two xor2s and an inverter, elaborated to transistors
    // (the subckts here only feed elaboration; the X cards flatten).
    let flat = format!("{cells}Xx1 p q w1 xor2\nXx2 w1 r w2 xor2\nXi1 w2 out inv\n");
    fs::write(dir.join("cells.sp"), &cells).unwrap();
    fs::write(dir.join("flat.sp"), &flat).unwrap();
    let out = subg(
        &dir,
        &[
            "hierarchize",
            "flat.sp",
            "--library",
            "cells.sp",
            "--out",
            "deck.sp",
            "--report",
            "text",
        ],
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The text report is a byte contract: per-level planted counts
    // (2 xor2 * 4 nand2 = 8, plus the lone inverter).
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "hierarchy: 2 level(s), 2 sweep(s)\n\
         level 1:\n\
         \x20 nand2                     8\n\
         \x20 inv                       1\n\
         level 2:\n\
         \x20 xor2                      2\n\
         unabsorbed devices: 0\n"
    );
    // The emitted deck re-elaborates to something isomorphic with the
    // original flat input.
    let deck = fs::read_to_string(dir.join("deck.sp")).unwrap();
    assert!(deck.contains(".subckt xor2"), "{deck}");
    let out = subg(&dir, &["compare", "flat.sp", "deck.sp"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // JSON mode emits the machine-readable report with the same counts.
    let out = subg(
        &dir,
        &[
            "hierarchize",
            "flat.sp",
            "--library",
            "cells.sp",
            "--report",
            "json",
        ],
    );
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"levels\""), "{stdout}");
    assert!(stdout.contains("\"unabsorbed_devices\": 0"), "{stdout}");
}
