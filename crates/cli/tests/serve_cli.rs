//! End-to-end `subg serve` tests: the machine-readable stdout
//! handshake, the ephemeral-port bind, serving over a real socket, and
//! the SIGINT drain path (unix-only — the signal plumbing is a no-op
//! elsewhere).
#![cfg(unix)]

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const CHIP: &str = "\
.global vdd gnd
.subckt inv a y
mp y a vdd vdd pmos
mn y a gnd gnd nmos
.ends
mq1p w0 in vdd vdd pmos
mq1n w0 in gnd gnd nmos
mq2p w1 w0 vdd vdd pmos
mq2n w1 w0 gnd gnd nmos
";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("subg_serve_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns `subg serve` and reads the `listening` handshake line from
/// stdout, returning the child and the resolved address.
fn spawn_serve(dir: &std::path::Path, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_subg"))
        .current_dir(dir)
        .arg("serve")
        .args(extra)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let stdout = child.stdout.as_mut().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve prints a listening line before EOF")
            .expect("stdout readable");
        if let Some(rest) = line.strip_prefix("{\"event\":\"listening\",\"addr\":\"") {
            break rest.trim_end_matches("\"}").to_string();
        }
    };
    (child, addr)
}

fn call(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn interrupt(child: &Child) {
    let pid = child.id().to_string();
    let status = Command::new("kill")
        .args(["-INT", &pid])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -INT failed");
}

#[test]
fn serve_binds_ephemeral_port_preloads_and_drains_on_sigint() {
    let dir = scratch("sigint");
    fs::write(dir.join("chip.sp"), CHIP).unwrap();
    let (mut child, addr) = spawn_serve(&dir, &["chip.sp"]);
    assert!(
        addr.starts_with("127.0.0.1:") && !addr.ends_with(":0"),
        "ephemeral port resolved: {addr}"
    );

    let (status, body) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");

    // The preloaded circuit is queryable under its elaborated name.
    let (status, body) = call(
        &addr,
        "POST",
        "/v1/find",
        r#"{"circuit": "chip", "pattern": {"source": ".subckt inv a y\nmp y a vdd vdd pmos\nmn y a gnd gnd nmos\n.ends\n", "cell": "inv"}}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"found\": 2"), "{body}");

    interrupt(&child);
    let mut remaining = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut remaining)
        .unwrap();
    let exit = child.wait().unwrap();
    assert!(exit.success(), "clean exit after SIGINT");
    assert!(
        remaining.contains("{\"event\":\"shutdown\",") && remaining.contains("\"drained\":0}"),
        "idle SIGINT shutdown reports a zero drain: {remaining}"
    );
}

#[test]
fn serve_rejects_bad_flags() {
    let dir = scratch("flags");
    for (flags, needle) in [
        (["--workers", "zero"], "--workers"),
        (["--slow-ms", "soon"], "--slow-ms"),
        (["--slow-keep", "0"], "--slow-keep"),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_subg"))
            .current_dir(&dir)
            .arg("serve")
            .args(flags)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{stderr}");
    }
}

#[test]
fn serve_observability_flags_wire_up_log_and_capture() {
    let dir = scratch("observability");
    fs::write(dir.join("chip.sp"), CHIP).unwrap();
    let log = dir.join("access.ndjson");
    let (mut child, addr) = spawn_serve(
        &dir,
        &[
            "chip.sp",
            "--access-log",
            log.to_str().unwrap(),
            "--slow-ms",
            "0",
            "--slow-keep",
            "4",
        ],
    );
    let find = r#"{"circuit": "chip", "pattern": {"source": ".subckt inv a y\nmp y a vdd vdd pmos\nmn y a gnd gnd nmos\n.ends\n", "cell": "inv"}}"#;
    let (status, body) = call(&addr, "POST", "/v1/find", find);
    assert_eq!(status, 200, "{body}");

    // --slow-ms 0 captured the find; it is retrievable by id.
    let (status, body) = call(&addr, "GET", "/v1/requests", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"request_id\": 1"), "{body}");
    let (status, body) = call(&addr, "GET", "/v1/requests/1", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"journal\""), "{body}");

    // The Prometheus exposition is live too.
    let (status, body) = call(&addr, "GET", "/metrics?format=prometheus", "");
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("subg_requests_total{endpoint=\"find\"} 1"),
        "{body}"
    );

    interrupt(&child);
    assert!(child.wait().unwrap().success());
    // The access log holds one well-formed line per request served.
    let text = fs::read_to_string(&log).expect("access log written");
    assert_eq!(text.lines().count(), 4, "{text}");
    let find_line = text
        .lines()
        .find(|l| l.contains("\"/v1/find\""))
        .unwrap_or_else(|| panic!("{text}"));
    assert!(find_line.contains("\"request_id\":1"), "{find_line}");
    assert!(find_line.contains("\"status\":200"), "{find_line}");
    assert!(
        find_line.contains("\"completeness\":\"complete\""),
        "{find_line}"
    );
}
