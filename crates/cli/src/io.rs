//! Shared loading helpers for the subcommands. Files ending in `.v`
//! or `.sv` load through the structural Verilog parser; everything
//! else is treated as SPICE (with `.include` resolution).

use subgemini_netlist::Netlist;
use subgemini_spice::{parse_file, ElaborateOptions, SpiceDoc};
use subgemini_verilog::{parse as vparse, Source, VerilogOptions};

/// A loaded deck in either supported format.
#[derive(Debug)]
pub enum Doc {
    /// A SPICE deck.
    Spice(SpiceDoc),
    /// A structural Verilog source.
    Verilog(Source),
}

fn is_verilog(path: &str) -> bool {
    path.ends_with(".v") || path.ends_with(".sv")
}

/// Reads and parses a netlist file, dispatching on extension.
///
/// # Errors
///
/// I/O and parse errors as strings, with the path in the message.
pub fn load_doc(path: &str) -> Result<Doc, String> {
    if is_verilog(path) {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Ok(Doc::Verilog(
            vparse(&text).map_err(|e| format!("{path}: {e}"))?,
        ))
    } else {
        Ok(Doc::Spice(parse_file(path).map_err(|e| e.to_string())?))
    }
}

impl Doc {
    /// Cell (subckt/module) names defined by the deck.
    pub fn cell_names(&self) -> Vec<String> {
        match self {
            Doc::Spice(d) => d.subckts.iter().map(|s| s.name.clone()).collect(),
            Doc::Verilog(s) => s.modules.iter().map(|m| m.name.clone()).collect(),
        }
    }
}

/// Elaborates the main circuit of a deck: the top level (SPICE cards /
/// the inferred top module), falling back to a sole cell definition.
///
/// # Errors
///
/// Propagates elaboration problems, or reports an ambiguous deck.
pub fn load_main(path: &str) -> Result<Netlist, String> {
    match load_doc(path)? {
        Doc::Spice(doc) => {
            let opts = ElaborateOptions::default();
            if !doc.top.is_empty() {
                return doc
                    .elaborate_top(main_name(path), &opts)
                    .map_err(|e| format!("{path}: {e}"));
            }
            match doc.subckts.len() {
                1 => doc
                    .elaborate_cell(&doc.subckts[0].name.clone(), &opts)
                    .map_err(|e| format!("{path}: {e}")),
                0 => Err(format!("{path}: deck is empty")),
                n => Err(format!(
                    "{path}: no top-level cards and {n} subcircuits; pass --pattern/--cell to pick one"
                )),
            }
        }
        Doc::Verilog(src) => src
            .elaborate(None, &VerilogOptions::default())
            .map_err(|e| format!("{path}: {e}")),
    }
}

/// Elaborates a named cell from a deck (for patterns and rules).
///
/// # Errors
///
/// Propagates unknown-cell and elaboration problems.
pub fn load_cell(doc: &Doc, name: &str, path: &str) -> Result<Netlist, String> {
    match doc {
        Doc::Spice(d) => d
            .elaborate_cell(name, &ElaborateOptions::default())
            .map_err(|e| format!("{path}: {e}")),
        Doc::Verilog(s) => s
            .elaborate(Some(name), &VerilogOptions::default())
            .map_err(|e| format!("{path}: {e}")),
    }
}

fn main_name(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".sp")
        .trim_end_matches(".cir")
        .trim_end_matches(".spice")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_name_strips_path_and_extension() {
        assert_eq!(main_name("/tmp/chip.sp"), "chip");
        assert_eq!(main_name("adder.spice"), "adder");
        assert_eq!(main_name("plain"), "plain");
    }

    #[test]
    fn load_doc_reports_missing_file() {
        let err = load_doc("/nonexistent/x.sp").unwrap_err();
        assert!(err.contains("/nonexistent/x.sp"));
        let err = load_doc("/nonexistent/x.v").unwrap_err();
        assert!(err.contains("/nonexistent/x.v"));
    }

    #[test]
    fn extension_dispatch() {
        assert!(is_verilog("a.v"));
        assert!(is_verilog("b.sv"));
        assert!(!is_verilog("c.sp"));
    }
}
