//! The `subg` subcommand implementations. Each returns the process
//! exit code: 0 on success, 1 for "ran fine but found differences /
//! violations" (grep-style), errors bubble as strings.
//!
//! The matching subcommands (`find`, `survey`, `explain`, `compile`,
//! `serve`) are thin adapters over the [`subgemini_engine`] session
//! layer: argument parsing maps onto [`RequestOptions`], the engine
//! runs the one shared request pipeline, and this module only renders.
//! One-shot commands use [`CircuitSource::Inline`] so nothing is
//! registered and cold runs stay byte-identical to pre-engine releases.

use std::fs;

use subgemini::{MatchOptions, Matcher};
use subgemini_engine::source::{load_cell, load_doc, load_main};
use subgemini_engine::{
    CircuitSource, Engine, ExplainRequest, FindRequest, HierarchizeRequest, LibrarySource,
    PatternSource, RequestOptions, SurveyRequest,
};
use subgemini_gemini::compare as gemini_compare;
use subgemini_netlist::{Netlist, NetlistStats};
use subgemini_spice::write_hierarchical;

use crate::args::Args;

fn pattern_from(args: &Args, main_path: &str) -> Result<Netlist, String> {
    let name = args.option("--pattern").ok_or("missing --pattern <cell>")?;
    let lib_path = args.option("--lib").unwrap_or(main_path);
    let doc = load_doc(lib_path)?;
    load_cell(&doc, name, lib_path)
}

fn library_from(args: &Args) -> Result<Vec<Netlist>, String> {
    if args.switch("--builtin-lib") {
        return Ok(subgemini_workloads::cells::library());
    }
    let path = args
        .option("--lib")
        .or_else(|| args.option("--library"))
        .ok_or("pass --lib <cells.sp> (or --library <cells.sp>) or --builtin-lib")?;
    let doc = load_doc(path)?;
    let mut cells = Vec::new();
    for name in doc.cell_names() {
        cells.push(load_cell(&doc, &name, path)?);
    }
    if cells.is_empty() {
        return Err(format!("{path}: no cell definitions"));
    }
    Ok(cells)
}

/// Maps command-line flags onto engine [`RequestOptions`]. The engine's
/// `lower` step resolves the `--artifact` warm-start handle (digest
/// check included), so the per-command copies of that wiring are gone.
fn request_options(args: &Args) -> Result<RequestOptions, String> {
    let mut opts = RequestOptions::default();
    if args.switch("--ignore-globals") {
        opts.respect_globals = false;
    }
    if args.switch("--first") {
        opts.max_instances = 1;
    }
    if let Some(n) = args.option("--threads") {
        opts.threads = n
            .parse()
            .map_err(|_| format!("--threads: `{n}` is not a count"))?;
    }
    if let Some(s) = args.option("--scheduler") {
        opts.scheduler = match s {
            "steal" => subgemini::Phase2Scheduler::WorkStealing,
            "static" => subgemini::Phase2Scheduler::StaticChunks,
            other => {
                return Err(format!(
                    "--scheduler: `{other}` is not a scheduler (expected `steal` or `static`)"
                ))
            }
        };
    }
    if let Some(s) = args.option("--shards") {
        opts.shards = match s {
            "auto" => subgemini::ShardPolicy::Auto,
            "off" => subgemini::ShardPolicy::Off,
            n => subgemini::ShardPolicy::Count(n.parse().map_err(|_| {
                format!("--shards: `{n}` is not a shard count (expected `auto`, `off` or a number)")
            })?),
        };
    }
    // A report implies metrics collection; text output stays untouched
    // (and the match byte-identical) without one.
    if report_mode(args)?.is_some() {
        opts.collect_metrics = true;
    }
    // Any event consumer turns the journal on; without one the search
    // carries no buffers at all.
    if args.option("--trace-out").is_some()
        || args.option("--events-out").is_some()
        || args.switch("--explain")
    {
        opts.trace_events = true;
    }
    // Work budget: only constructed when a cap is actually given, so
    // plain runs stay governor-free (`lower` also drops unlimited
    // budgets, belt and braces).
    let mut budget = subgemini::WorkBudget::default();
    if let Some(n) = args.option("--max-effort") {
        budget.max_effort = Some(
            n.parse()
                .map_err(|_| format!("--max-effort: `{n}` is not an effort-unit count"))?,
        );
    }
    if let Some(ms) = args.option("--deadline-ms") {
        budget.deadline_ms = Some(
            ms.parse()
                .map_err(|_| format!("--deadline-ms: `{ms}` is not a millisecond count"))?,
        );
    }
    if !budget.is_unlimited() {
        opts.budget = Some(budget);
    }
    if let Some(p) = args.option("--prune") {
        opts.prune = match p {
            "auto" => subgemini::PrunePolicy::Auto,
            "always" => subgemini::PrunePolicy::Always,
            "never" => subgemini::PrunePolicy::Never,
            other => {
                return Err(format!(
                    "--prune: `{other}` is not a policy (expected `auto`, `always` or `never`)"
                ))
            }
        };
    }
    opts.artifact = args.option("--artifact").map(str::to_string);
    Ok(opts)
}

/// Exit code for a finished search: truncation is not a failure (the
/// caller asked for a bounded run and got a valid prefix) unless
/// `--fail-fast` asks to treat it as one, with its own documented code
/// so scripts can tell "nothing found" (1) from "ran out of budget"
/// (3).
fn find_exit_code(args: &Args, outcome: &subgemini::MatchOutcome) -> u8 {
    if outcome.completeness.is_truncated() {
        return if args.switch("--fail-fast") { 3 } else { 0 };
    }
    if outcome.count() > 0 {
        0
    } else {
        1
    }
}

/// Writes the requested event exports (`--trace-out`, `--events-out`)
/// from a finished outcome's journal.
fn write_event_exports(args: &Args, outcome: &subgemini::MatchOutcome) -> Result<(), String> {
    let Some(journal) = outcome.events.as_ref() else {
        return Ok(());
    };
    if let Some(path) = args.option("--trace-out") {
        let doc = subgemini::events::journal_to_chrome_trace(journal);
        fs::write(path, doc.pretty()).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = args.option("--events-out") {
        let text = subgemini::events::journal_to_ndjson(journal);
        fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

/// The validated `--report` value, if any.
fn report_mode(args: &Args) -> Result<Option<&str>, String> {
    match args.option("--report") {
        None => Ok(None),
        Some(m @ ("json" | "text")) => Ok(Some(m)),
        Some(other) => Err(format!(
            "--report: expected `json` or `text`, got `{other}`"
        )),
    }
}

/// `subg find`: locate all instances of a pattern.
pub fn find(args: &Args) -> Result<u8, String> {
    let main_path = args.need(0, "main netlist file")?;
    let main = load_main(main_path)?;
    let pattern = pattern_from(args, main_path)?;
    let options = request_options(args)?;
    let resp = Engine::new()
        .find(&FindRequest {
            circuit: CircuitSource::Inline(&main),
            pattern: PatternSource::Inline(&pattern),
            options,
        })
        .map_err(|e| e.to_string())?;
    let outcome = &resp.outcome;
    write_event_exports(args, outcome)?;
    let explain_text = args
        .switch("--explain")
        .then(|| subgemini::ExplainReport::from_outcome(outcome).render());
    match report_mode(args)? {
        Some("json") => {
            // Machine-readable: the report is the whole stdout.
            print!("{}", subgemini::metrics::outcome_to_json(outcome).pretty());
            return Ok(find_exit_code(args, outcome));
        }
        Some(_) => {
            print!("{}", subgemini::metrics::outcome_to_text(outcome));
            if let Some(text) = explain_text {
                print!("{text}");
            }
            return Ok(find_exit_code(args, outcome));
        }
        None => {}
    }
    if args.switch("--csv") {
        println!("instance,devices");
        for (i, names) in resp.instance_devices.iter().enumerate() {
            println!("{i},{}", names.join(";"));
        }
    } else {
        println!(
            "{} instance(s) of `{}` in `{}`",
            outcome.count(),
            resp.pattern,
            resp.circuit
        );
        for (i, names) in resp.instance_devices.iter().enumerate() {
            println!("  #{i}: {}", names.join(" "));
        }
        println!(
            "phase1: |CV|={} iters={}; phase2: {} tried, {} false, {} passes",
            outcome.phase1.cv_size,
            outcome.phase1.iterations,
            outcome.phase2.candidates_tried,
            outcome.phase2.false_candidates,
            outcome.phase2.passes
        );
    }
    if let subgemini::Completeness::Truncated {
        reason,
        candidates_tried,
        candidates_skipped,
    } = &outcome.completeness
    {
        // Keep --csv stdout machine-clean; the exit code still reports
        // the truncation there.
        if !args.switch("--csv") {
            println!(
                "truncated ({}): {candidates_tried} candidate(s) tried, {candidates_skipped} skipped",
                reason.as_str()
            );
        }
    }
    if let Some(text) = explain_text {
        print!("{text}");
    }
    Ok(find_exit_code(args, outcome))
}

/// `subg explain`: run the search with the event journal on and answer
/// "why did (or didn't) this pattern match?" from the merged stream.
pub fn explain(args: &Args) -> Result<u8, String> {
    let main_path = args.need(0, "main netlist file")?;
    let main = load_main(main_path)?;
    let pattern = pattern_from(args, main_path)?;
    let resp = Engine::new()
        .explain(&ExplainRequest {
            circuit: CircuitSource::Inline(&main),
            pattern: PatternSource::Inline(&pattern),
            options: request_options(args)?,
        })
        .map_err(|e| e.to_string())?;
    write_event_exports(args, &resp.outcome)?;
    if args.switch("--json") {
        print!("{}", resp.report.to_json().pretty());
    } else {
        print!("{}", resp.report.render());
    }
    Ok(if resp.outcome.count() > 0 { 0 } else { 1 })
}

/// `subg candidates`: Phase I only.
pub fn candidates(args: &Args) -> Result<u8, String> {
    let main_path = args.need(0, "main netlist file")?;
    let main = load_main(main_path)?;
    let pattern = pattern_from(args, main_path)?;
    let cv = subgemini::candidates::generate(&pattern, &main);
    match cv.key {
        Some(key) => {
            let key_name = match key {
                subgemini_netlist::Vertex::Device(d) => pattern.device(d).name().to_string(),
                subgemini_netlist::Vertex::Net(n) => pattern.net_ref(n).name().to_string(),
            };
            println!(
                "key vertex: {key_name} ({} candidates after {} iterations)",
                cv.candidates.len(),
                cv.stats.iterations
            );
            for c in &cv.candidates {
                let name = match c {
                    subgemini_netlist::Vertex::Device(d) => main.device(*d).name(),
                    subgemini_netlist::Vertex::Net(n) => main.net_ref(*n).name(),
                };
                println!("  {name}");
            }
            Ok(0)
        }
        None => {
            println!(
                "no viable key vertex (proven empty: {})",
                cv.stats.proven_empty
            );
            Ok(1)
        }
    }
}

/// `subg compile`: compile a main netlist into a persistent `.sgc`
/// artifact (CSR snapshot + fingerprint index) for warm-started runs.
pub fn compile(args: &Args) -> Result<u8, String> {
    let main_path = args.need(0, "main netlist file")?;
    let main = load_main(main_path)?;
    let out = match args.option("--out") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::path::Path::new(main_path).with_extension("sgc"),
    };
    let enc = subgemini_engine::compile_netlist(&main);
    fs::write(&out, &enc.bytes).map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "{}: {} device(s), {} net(s), digest {:016x}, {} bytes",
        out.display(),
        enc.devices,
        enc.nets,
        enc.digest,
        enc.bytes.len()
    );
    Ok(0)
}

/// `subg serve`: long-lived matching daemon over the same engine the
/// one-shot commands use. Positional netlist files are compiled and
/// registered up front (under their elaborated circuit names); clients
/// then upload/register more and query over HTTP. Stdout carries
/// machine-readable NDJSON status lines — scripts read the `listening`
/// line for the resolved address (`--addr 127.0.0.1:0` binds an
/// ephemeral port), and the final `shutdown` line for the drain count.
pub fn serve(args: &Args) -> Result<u8, String> {
    use std::io::Write as _;
    let mut config = subgemini_serve::ServeConfig::default();
    if let Some(addr) = args.option("--addr") {
        config.addr = addr.to_string();
    }
    if let Some(w) = args.option("--workers") {
        config.workers = w
            .parse()
            .map_err(|_| format!("--workers: `{w}` is not a count"))?;
        if config.workers == 0 {
            return Err("--workers: need at least one worker".into());
        }
    }
    if let Some(target) = args.option("--access-log") {
        config.access_log = Some(target.to_string());
    }
    if let Some(ms) = args.option("--slow-ms") {
        let ms = ms
            .parse()
            .map_err(|_| format!("--slow-ms: `{ms}` is not a millisecond count"))?;
        config.slow_ms = Some(ms);
    }
    if let Some(keep) = args.option("--slow-keep") {
        config.slow_keep = keep
            .parse()
            .map_err(|_| format!("--slow-keep: `{keep}` is not a count"))?;
        if config.slow_keep == 0 {
            return Err("--slow-keep: need at least one slot".into());
        }
    }
    let engine = std::sync::Arc::new(Engine::new());
    let mut preloads = Vec::new();
    for path in &args.positional {
        let main = load_main(path)?;
        let name = main.name().to_string();
        let info = engine.register_circuit(&name, main);
        preloads.push(info);
    }
    let server = subgemini_serve::Server::bind(engine, &config)
        .map_err(|e| format!("{}: {e}", config.addr))?;
    let mut stdout = std::io::stdout();
    for info in &preloads {
        println!(
            "{{\"event\":\"registered\",\"circuit\":\"{}\",\"devices\":{},\"nets\":{}}}",
            info.name, info.devices, info.nets
        );
    }
    // The machine-readable handshake: exactly one `listening` line,
    // flushed before serving, so spawners never race on the port.
    println!(
        "{{\"event\":\"listening\",\"addr\":\"{}\"}}",
        server.local_addr()
    );
    stdout.flush().map_err(|e| e.to_string())?;
    subgemini_serve::signal::install(&server.shutdown_handle());
    let report = server.run();
    println!(
        "{{\"event\":\"shutdown\",\"served\":{},\"drained\":{}}}",
        report.served, report.drained
    );
    Ok(0)
}

/// `subg extract`: transistor→gate conversion, hierarchical deck out.
pub fn extract(args: &Args) -> Result<u8, String> {
    let main_path = args.need(0, "main netlist file")?;
    let main = load_main(main_path)?;
    let cells = library_from(args)?;
    let mut extractor = subgemini::Extractor::new();
    for cell in &cells {
        extractor.add_cell(cell.clone());
    }
    let (top, report) = extractor.extract(&main).map_err(|e| e.to_string())?;
    for (cell, n) in &report.per_cell {
        if *n > 0 {
            println!("{cell:<16} {n}");
        }
    }
    println!("unabsorbed devices: {}", report.unabsorbed_devices);
    let used: Vec<Netlist> = cells
        .iter()
        .filter(|c| report.count_of(c.name()) > 0)
        .cloned()
        .collect();
    let deck = write_hierarchical(&top, &used);
    match args.option("--out") {
        Some(path) => fs::write(path, deck).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{deck}"),
    }
    Ok(0)
}

/// `subg check`: rule library over a circuit.
pub fn check(args: &Args) -> Result<u8, String> {
    let main_path = args.need(0, "main netlist file")?;
    let main = load_main(main_path)?;
    let rules_path = args.option("--rules").ok_or("missing --rules <file>")?;
    let doc = load_doc(rules_path)?;
    let mut checker = subgemini::RuleChecker::new();
    for name in doc.cell_names() {
        let pattern = load_cell(&doc, &name, rules_path)?;
        checker.add_rule(name.clone(), format!("pattern `{name}`"), pattern);
    }
    let violations = checker.check(&main);
    for v in &violations {
        println!("[{}] {}", v.rule, v.devices.join(" "));
    }
    println!("{} violation(s)", violations.len());
    Ok(if violations.is_empty() { 0 } else { 1 })
}

/// `subg map`: greedy technology mapping report.
pub fn techmap(args: &Args) -> Result<u8, String> {
    let main_path = args.need(0, "main netlist file")?;
    let main = load_main(main_path)?;
    let cells = library_from(args)?;
    let mut mapper = subgemini::TechMapper::new();
    for cell in cells {
        // Cost model: device count (area proxy).
        let cost = cell.device_count() as f64;
        mapper.add_cell(cell, cost);
    }
    let cover = mapper.map_greedy(&main);
    for c in &cover.chosen {
        println!("{:<16} cost {:>6.1}", c.cell, c.cost);
    }
    println!(
        "total cost {:.1}, uncovered devices {}",
        cover.total_cost,
        cover.uncovered.len()
    );
    Ok(if cover.is_complete() { 0 } else { 1 })
}

/// `subg compare`: Gemini netlist comparison. With `--hierarchical`,
/// decks are compared cell by cell plus an unflattened top — the
/// paper's §I point that hierarchical matching localizes errors and
/// makes incremental re-checks cheap (unchanged cells verify
/// independently of the edited one).
pub fn compare(args: &Args) -> Result<u8, String> {
    let a_path = args.need(0, "first netlist")?;
    let b_path = args.need(1, "second netlist")?;
    if args.switch("--hierarchical") {
        return compare_hierarchical(a_path, b_path);
    }
    let (a, b) = match args.option("--cell") {
        Some(cell) => {
            let da = load_doc(a_path)?;
            let db = load_doc(b_path)?;
            (load_cell(&da, cell, a_path)?, load_cell(&db, cell, b_path)?)
        }
        None => (load_main(a_path)?, load_main(b_path)?),
    };
    match gemini_compare(&a, &b) {
        subgemini_gemini::GeminiOutcome::Isomorphic(_) => {
            println!("isomorphic");
            Ok(0)
        }
        subgemini_gemini::GeminiOutcome::Mismatch(m) => {
            println!("NOT isomorphic: {m}");
            Ok(1)
        }
    }
}

/// Delegates to the library implementation in `subgemini_suite::hier`
/// (one cell loop to rule them all — the CLI only renders), keeping the
/// historical output bytes. Both decks must be the same format; the
/// cell-by-cell semantics across formats never lined up anyway.
fn compare_hierarchical(a_path: &str, b_path: &str) -> Result<u8, String> {
    use subgemini_engine::source::Doc;
    use subgemini_suite::hier::{compare_docs, compare_verilog, CellOutcome};
    let da = load_doc(a_path)?;
    let db = load_doc(b_path)?;
    let report = match (&da, &db) {
        (Doc::Spice(a), Doc::Spice(b)) => compare_docs(a, b).map_err(|e| e.to_string())?,
        (Doc::Verilog(a), Doc::Verilog(b)) => compare_verilog(a, b).map_err(|e| e.to_string())?,
        _ => {
            return Err(format!(
                "--hierarchical needs both netlists in the same format ({a_path} vs {b_path})"
            ))
        }
    };
    let mut failures = 0usize;
    for (name, outcome) in &report.cells {
        match outcome {
            CellOutcome::Matches => println!("cell {name:<16} ok"),
            CellOutcome::Differs(m) => {
                println!("cell {name:<16} DIFFERS: {m}");
                failures += 1;
            }
            CellOutcome::OnlyInFirst => {
                println!("cell {name:<16} only in {a_path}");
                failures += 1;
            }
            CellOutcome::OnlyInSecond => {
                println!("cell {name:<16} only in {b_path}");
                failures += 1;
            }
        }
    }
    match &report.top {
        Some(CellOutcome::Differs(m)) => {
            println!("top              DIFFERS: {m}");
            failures += 1;
        }
        _ => println!("top              ok"),
    }
    println!("{failures} difference(s)");
    Ok(if failures == 0 { 0 } else { 1 })
}

/// Loads the `--library` deck for `subg hierarchize` with *one-level*
/// elaboration: a cell's `X` instances of other library cells stay
/// composite devices (that is what encodes the level structure), while
/// `library_from`'s flat loader would erase it. The hierarchizer
/// normalizes the naive composite types afterwards.
fn hierarchize_library(args: &Args) -> Result<Vec<Netlist>, String> {
    if args.switch("--builtin-lib") {
        return Ok(subgemini_workloads::cells::library());
    }
    let path = args
        .option("--library")
        .or_else(|| args.option("--lib"))
        .ok_or("pass --library <cells.sp> or --builtin-lib")?;
    let doc = load_doc(path)?;
    let names = doc.cell_names();
    if names.is_empty() {
        return Err(format!("{path}: no cell definitions"));
    }
    names
        .iter()
        .map(|name| subgemini_engine::source::load_cell_hierarchical(&doc, name, path))
        .collect()
}

/// `subg hierarchize`: iterative bottom-up hierarchy reconstruction —
/// the library is grouped into levels, each level extracted in turn
/// over the flat netlist until a fixpoint, and the per-level report
/// printed (`--report json|text`, text by default). `--out` writes the
/// recovered hierarchical deck.
pub fn hierarchize(args: &Args) -> Result<u8, String> {
    let main_path = args.need(0, "main netlist file")?;
    let main = load_main(main_path)?;
    let cells = hierarchize_library(args)?;
    let resp = Engine::new()
        .hierarchize(&HierarchizeRequest {
            circuit: CircuitSource::Inline(&main),
            library: LibrarySource::Inline(&cells),
            options: request_options(args)?,
        })
        .map_err(|e| e.to_string())?;
    match report_mode(args)? {
        Some("json") => print!("{}", resp.report.to_json().pretty()),
        _ => print!("{}", resp.report.render_text()),
    }
    if let Some(path) = args.option("--out") {
        fs::write(path, &resp.deck).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(0)
}

/// `subg trace`: render the Phase II labeling trace of the first
/// verified instance in the paper's Table 1 notation.
pub fn trace(args: &Args) -> Result<u8, String> {
    let main_path = args.need(0, "main netlist file")?;
    let main = load_main(main_path)?;
    let pattern = pattern_from(args, main_path)?;
    // Trace never warm-starts: the rendered pass-by-pass labeling is a
    // teaching view of the cold algorithm, so `--artifact` is ignored
    // here (as it always was).
    let mut ropts = request_options(args)?;
    ropts.artifact = None;
    let opts = ropts.lower(&main, None).map_err(|e| e.to_string())?;
    let outcome = Matcher::new(&pattern, &main)
        .options(MatchOptions {
            record_trace: true,
            spread_from_port_images: true, // paper-literal spreading
            ..opts
        })
        .find_all();
    let count = outcome.count();
    match outcome.trace {
        Some(t) => {
            print!("{}", t.render(&pattern, &main));
            println!(
                "\n{count} instance(s); trace shows the first verified candidate ({} passes)",
                t.pass_count()
            );
            Ok(0)
        }
        None => {
            println!("no instance found; nothing to trace");
            Ok(1)
        }
    }
}

/// `subg survey`: count instances of every library cell in one run.
/// The main circuit is compiled and Phase-I-relabeled exactly once,
/// shared across every cell.
pub fn survey(args: &Args) -> Result<u8, String> {
    let main_path = args.need(0, "main netlist file")?;
    let main = load_main(main_path)?;
    let cells = library_from(args)?;
    let resp = Engine::new()
        .survey(&SurveyRequest {
            circuit: CircuitSource::Inline(&main),
            library: LibrarySource::Inline(&cells),
            options: request_options(args)?,
        })
        .map_err(|e| e.to_string())?;
    println!("{:<18} {:>6} {:>6}", "cell", "|CV|", "found");
    for row in &resp.rows {
        println!(
            "{:<18} {:>6} {:>6}",
            row.cell,
            row.outcome.phase1.cv_size,
            row.outcome.count()
        );
    }
    Ok(0)
}

/// `subg fingerprint`: canonical isomorphism-invariant hashes for a
/// deck's cells, with duplicate grouping.
pub fn fingerprint(args: &Args) -> Result<u8, String> {
    let path = args.need(0, "netlist file")?;
    let doc = load_doc(path)?;
    let names = doc.cell_names();
    if names.is_empty() {
        return Err(format!("{path}: no cell definitions to fingerprint"));
    }
    let cells: Vec<Netlist> = names
        .iter()
        .map(|n| load_cell(&doc, n, path))
        .collect::<Result<_, _>>()?;
    for cell in &cells {
        println!(
            "{:016x}  {}",
            subgemini_gemini::fingerprint(cell),
            cell.name()
        );
    }
    let refs: Vec<&Netlist> = cells.iter().collect();
    let groups = subgemini_gemini::dedup_classes(&refs);
    let mut dups = 0;
    for group in &groups {
        if group.len() > 1 {
            let members: Vec<&str> = group.iter().map(|&i| names[i].as_str()).collect();
            println!("duplicates: {}", members.join(" == "));
            dups += 1;
        }
    }
    println!("{} cell(s), {} duplicate group(s)", names.len(), dups);
    Ok(if dups == 0 { 0 } else { 1 })
}

/// `subg dot`: Graphviz export of the bipartite circuit graph.
pub fn dot(args: &Args) -> Result<u8, String> {
    let path = args.need(0, "netlist file")?;
    let main = load_main(path)?;
    let text = subgemini_netlist::to_dot(&main);
    match args.option("--out") {
        Some(out_path) => fs::write(out_path, text).map_err(|e| format!("{out_path}: {e}"))?,
        None => print!("{text}"),
    }
    Ok(0)
}

/// `subg stats`: netlist summary.
pub fn stats(args: &Args) -> Result<u8, String> {
    let path = args.need(0, "netlist file")?;
    let main = load_main(path)?;
    println!("{}", NetlistStats::of(&main));
    Ok(0)
}
