//! `subg` — command-line front end for the SubGemini reproduction.
//!
//! ```text
//! subg find <main.sp> --pattern <cell> [--lib <cells.sp>] [--ignore-globals] [--first] [--csv]
//!           [--report json|text] [--threads <n>] [--scheduler steal|static]
//!           [--shards auto|off|<n>] [--trace-out <trace.json>]
//!           [--events-out <events.ndjson>] [--explain]
//!           [--max-effort <n>] [--deadline-ms <ms>] [--fail-fast]
//!           [--artifact <main.sgc>] [--prune auto|always|never]
//! subg explain <main.sp> --pattern <cell> [--lib <cells.sp>] [--json]
//! subg candidates <main.sp> --pattern <cell> [--lib <cells.sp>]
//! subg compile <main.sp> [--out <main.sgc>]
//! subg extract <main.sp> [--lib <cells.sp> | --builtin-lib] [--out <deck.sp>]
//! subg hierarchize <flat.sp> --library <cells.sp> [--out <deck.sp>] [--report json|text]
//! subg check <main.sp> --rules <rules.sp>
//! subg map <main.sp> [--lib <cells.sp> | --builtin-lib]
//! subg survey <main.sp> [--lib <cells.sp> | --builtin-lib] [--artifact <main.sgc>]
//! subg compare <a.sp> <b.sp> [--cell <name>] [--hierarchical]
//! subg stats <file.sp>
//! subg dot <file.sp> [--out <file.dot>]
//! subg serve [<main.sp>...] [--addr <host:port>] [--workers <n>] [--access-log <path|->]
//!           [--slow-ms <ms>] [--slow-keep <n>]
//! ```
//!
//! Patterns, rules and library cells are `.subckt` definitions; their
//! ports are the external nets, and `.global` (plus the conventional
//! `vdd`/`gnd`/`vss`/`vcc`/`0`) mark special signals.

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
subg — SubGemini subcircuit tools

USAGE:
  subg find <main.sp> --pattern <cell> [--lib <cells.sp>] [--ignore-globals] [--first] [--csv]
            [--report json|text] [--threads <n>] [--scheduler steal|static]
            [--shards auto|off|<n>] [--trace-out <trace.json>]
            [--events-out <events.ndjson>] [--explain]
            [--max-effort <n>] [--deadline-ms <ms>] [--fail-fast]
            [--artifact <main.sgc>] [--prune auto|always|never]
  subg explain <main.sp> --pattern <cell> [--lib <cells.sp>] [--json]
  subg candidates <main.sp> --pattern <cell> [--lib <cells.sp>]
  subg compile <main.sp> [--out <main.sgc>]
  subg extract <main.sp> [--lib <cells.sp> | --builtin-lib] [--out <deck.sp>]
  subg hierarchize <flat.sp> --library <cells.sp> [--out <deck.sp>] [--report json|text]
  subg check <main.sp> --rules <rules.sp>
  subg map <main.sp> [--lib <cells.sp> | --builtin-lib]
  subg survey <main.sp> [--lib <cells.sp> | --builtin-lib] [--artifact <main.sgc>]
  subg trace <main.sp> --pattern <cell> [--lib <cells.sp>]
  subg compare <a.sp> <b.sp> [--cell <name>] [--hierarchical]
  subg stats <file.sp>
  subg dot <file.sp> [--out <file.dot>]
  subg fingerprint <cells.sp|cells.v>
  subg serve [<main.sp>...] [--addr <host:port>] [--workers <n>] [--access-log <path|->]
            [--slow-ms <ms>] [--slow-keep <n>]
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let parsed = match args::Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "find" => commands::find(&parsed),
        "explain" => commands::explain(&parsed),
        "candidates" => commands::candidates(&parsed),
        "compile" => commands::compile(&parsed),
        "extract" => commands::extract(&parsed),
        "hierarchize" => commands::hierarchize(&parsed),
        "check" => commands::check(&parsed),
        "map" => commands::techmap(&parsed),
        "survey" => commands::survey(&parsed),
        "trace" => commands::trace(&parsed),
        "compare" => commands::compare(&parsed),
        "stats" => commands::stats(&parsed),
        "dot" => commands::dot(&parsed),
        "fingerprint" => commands::fingerprint(&parsed),
        "serve" => commands::serve(&parsed),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(0)
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
