//! Tiny hand-rolled argument parsing (flags + positionals), enough for
//! the `subg` subcommands without external dependencies.

use std::collections::HashMap;

/// Parsed command line: positionals plus `--flag [value]` options.
#[derive(Debug, Default)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--key value` options.
    options: HashMap<String, String>,
    /// Bare `--switch` flags.
    switches: Vec<String>,
}

/// Flags that take no value, per subcommand-agnostic convention.
const SWITCHES: &[&str] = &[
    "--ignore-globals",
    "--first",
    "--csv",
    "--builtin-lib",
    "--hierarchical",
    "--verbose",
    "--explain",
    "--json",
    "--fail-fast",
];

impl Args {
    /// Parses raw arguments (already without the program/subcommand
    /// names).
    ///
    /// # Errors
    ///
    /// Returns a message when an option is missing its value.
    pub fn parse(raw: &[String]) -> Result<Self, String> {
        let mut args = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(stripped) = a.strip_prefix("--") {
                let _ = stripped;
                if SWITCHES.contains(&a.as_str()) {
                    args.switches.push(a.clone());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("option {a} requires a value"))?;
                    args.options.insert(a.clone(), value.clone());
                }
            } else {
                args.positional.push(a.clone());
            }
        }
        Ok(args)
    }

    /// The value of `--key`, if provided.
    pub fn option(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether the bare switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// The `i`-th positional argument or an error naming it.
    ///
    /// # Errors
    ///
    /// Returns a usage message when the positional is missing.
    pub fn need(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn mixes_positionals_options_and_switches() {
        let a = Args::parse(&v(&[
            "main.sp",
            "--pattern",
            "nand2",
            "--ignore-globals",
            "extra",
        ]))
        .unwrap();
        assert_eq!(a.positional, vec!["main.sp", "extra"]);
        assert_eq!(a.option("--pattern"), Some("nand2"));
        assert!(a.switch("--ignore-globals"));
        assert!(!a.switch("--csv"));
    }

    #[test]
    fn option_without_value_errors() {
        let err = Args::parse(&v(&["--pattern"])).unwrap_err();
        assert!(err.contains("--pattern"));
    }

    #[test]
    fn need_reports_missing_positional() {
        let a = Args::parse(&v(&[])).unwrap();
        assert!(a.need(0, "main netlist").unwrap_err().contains("main"));
    }
}
