//! Observability end-to-end: Prometheus exposition invariants, the
//! NDJSON access log, the slow/truncated capture ring, status-class
//! accounting (including the panic→500 path), and the zero-perturbation
//! contract — a fully instrumented daemon answers the same bytes as a
//! plain one.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use subgemini::metrics::json;
use subgemini_engine::Engine;
use subgemini_serve::{DrainReport, ServeConfig, Server};

const CELLS: &str = "\
.global vdd gnd
.subckt inv a y
mp y a vdd vdd pmos
mn y a gnd gnd nmos
.ends
";

const CHIP: &str = "\
.global vdd gnd
mq1p w0 in vdd vdd pmos
mq1n w0 in gnd gnd nmos
mq2p w1 w0 vdd vdd pmos
mq2n w1 w0 gnd gnd nmos
";

/// A pattern whose cell has a port net no device touches: compiling it
/// is fine, but `find_all` asserts patterns are fully connected, so a
/// find request over it panics inside the handler.
const ISOLATED_NET_CELL: &str = "\
.subckt bad a y z
mp y a vdd vdd pmos
.ends
";

fn start_with(
    engine: Arc<Engine>,
    config: ServeConfig,
) -> (SocketAddr, thread::JoinHandle<DrainReport>, impl Fn()) {
    let server = Server::bind(engine, &config).expect("ephemeral bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let join = thread::spawn(move || server.run());
    (addr, join, move || handle.shutdown())
}

fn ephemeral() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    }
}

/// One HTTP request; returns (status, headers, body).
fn call_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (status, head.to_string(), body.to_string())
}

fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = call_raw(addr, method, path, body);
    (status, body)
}

fn parse_json(body: &str) -> json::Value {
    json::parse(body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"))
}

const FIND_INV: &str = r#"{"circuit": "chip", "pattern": {"library": "cells", "cell": "inv"}}"#;

fn register_chip_and_cells(addr: SocketAddr) {
    let (status, body) = call(addr, "POST", "/v1/circuits/chip", CHIP);
    assert_eq!(status, 200, "{body}");
    let (status, body) = call(addr, "POST", "/v1/libraries/cells", CELLS);
    assert_eq!(status, 200, "{body}");
}

/// Every sample line of a Prometheus exposition, `name{labels}` → value.
fn samples(text: &str) -> BTreeMap<String, f64> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (key, value) = l.rsplit_once(' ').expect("sample line");
            (key.to_string(), value.parse().expect("numeric sample"))
        })
        .collect()
}

#[test]
fn prometheus_exposition_is_well_formed_and_monotone_under_load() {
    let (addr, join, shutdown) = start_with(Arc::new(Engine::new()), ephemeral());
    register_chip_and_cells(addr);
    let fire_finds = |n: usize| {
        thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|_| scope.spawn(move || call(addr, "POST", "/v1/find", FIND_INV)))
                .collect();
            for h in handles {
                let (status, body) = h.join().unwrap();
                assert_eq!(status, 200, "{body}");
            }
        });
    };
    fire_finds(8);
    let (status, head, first) = call_raw(addr, "GET", "/metrics?format=prometheus", "");
    assert_eq!(status, 200);
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: text/plain; version=0.0.4"),
        "{head}"
    );

    // One `# TYPE` (and one `# HELP`) per family, no duplicates.
    for marker in ["# TYPE ", "# HELP "] {
        let mut seen = std::collections::BTreeSet::new();
        for line in first.lines().filter(|l| l.starts_with(marker)) {
            assert!(seen.insert(line.to_string()), "duplicate: {line}");
        }
    }
    // Every histogram family carries buckets, a +Inf bucket, a sum,
    // and a count.
    let histograms: Vec<&str> = first
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.strip_suffix(" histogram"))
        .collect();
    assert!(!histograms.is_empty(), "{first}");
    for family in &histograms {
        for suffix in ["_bucket", "_sum", "_count"] {
            assert!(
                first
                    .lines()
                    .any(|l| l.starts_with(&format!("{family}{suffix}"))),
                "{family} is missing {suffix} samples"
            );
        }
        assert!(
            first.contains("le=\"+Inf\"") && first.contains(&format!("{family}_bucket")),
            "{family} is missing its +Inf bucket"
        );
    }
    // The headline counter matches the finds issued.
    let first_samples = samples(&first);
    assert_eq!(
        first_samples.get("subg_requests_total{endpoint=\"find\"}"),
        Some(&8.0),
        "{first}"
    );
    assert_eq!(
        first_samples.get("subg_circuit_requests_total{circuit=\"chip\"}"),
        Some(&8.0)
    );

    // A second scrape under more load: every counter/bucket sample that
    // existed is still there and has not decreased.
    fire_finds(8);
    let (_, _, second) = call_raw(addr, "GET", "/metrics?format=prometheus", "");
    let second_samples = samples(&second);
    for (key, v1) in &first_samples {
        if key.starts_with("subg_uptime") || key.starts_with("subg_in_flight") {
            continue; // gauges
        }
        let v2 = second_samples
            .get(key)
            .unwrap_or_else(|| panic!("sample `{key}` vanished between scrapes"));
        assert!(v2 >= v1, "`{key}` went backwards: {v1} -> {v2}");
    }
    assert_eq!(
        second_samples.get("subg_requests_total{endpoint=\"find\"}"),
        Some(&16.0)
    );
    shutdown();
    join.join().unwrap();
}

#[test]
fn prometheus_label_values_are_escaped() {
    let (addr, join, shutdown) = start_with(Arc::new(Engine::new()), ephemeral());
    // A circuit name with a quote and a backslash: legal as a path
    // segment, must be escaped in the exposition.
    let name = "we\"ird\\chip";
    let (status, body) = call(addr, "POST", &format!("/v1/circuits/{name}"), CHIP);
    assert_eq!(status, 200, "{body}");
    let (status, body) = call(addr, "POST", "/v1/libraries/cells", CELLS);
    assert_eq!(status, 200, "{body}");
    let req = r#"{"circuit": "we\"ird\\chip", "pattern": {"library": "cells", "cell": "inv"}}"#;
    let (status, body) = call(addr, "POST", "/v1/find", req);
    assert_eq!(status, 200, "{body}");
    let (_, text) = call(addr, "GET", "/metrics?format=prometheus", "");
    assert!(
        text.contains("subg_circuit_requests_total{circuit=\"we\\\"ird\\\\chip\"} 1"),
        "{text}"
    );
    // The raw (unescaped) label never appears.
    assert!(!text.contains("circuit=\"we\"ird\\chip\""), "{text}");
    shutdown();
    join.join().unwrap();
}

#[test]
fn status_classes_count_and_panicking_route_answers_500() {
    let (addr, join, shutdown) = start_with(Arc::new(Engine::new()), ephemeral());
    register_chip_and_cells(addr);
    let (status, _) = call(addr, "GET", "/healthz", ""); // 2xx
    assert_eq!(status, 200);
    let (status, _) = call(addr, "GET", "/v1/nope", ""); // 4xx
    assert_eq!(status, 404);
    // The panic path: a degenerate pattern trips a core precondition
    // inside the handler; catch_unwind must turn it into a 500, not a
    // dead worker.
    let body = json::Value::Obj(vec![
        ("circuit".into(), json::Value::Str("chip".into())),
        (
            "pattern".into(),
            json::Value::Obj(vec![
                ("source".into(), json::Value::Str(ISOLATED_NET_CELL.into())),
                ("cell".into(), json::Value::Str("bad".into())),
            ]),
        ),
    ])
    .compact();
    let (status, resp) = call(addr, "POST", "/v1/find", &body);
    assert_eq!(status, 500, "{resp}");
    assert!(parse_json(&resp).get("error").is_some(), "{resp}");
    // The worker pool survived: the next request still answers.
    let (status, resp) = call(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let doc = parse_json(&resp);
    let server = doc.get("server").unwrap();
    let class = |k: &str| server.get("responses").unwrap().get(k).unwrap().as_u64();
    assert!(class("2xx").unwrap() >= 3, "{resp}"); // healthz + registrations
    assert!(class("4xx").unwrap() >= 1, "{resp}");
    assert_eq!(class("5xx"), Some(1), "{resp}");
    assert_eq!(server.get("http_errors").unwrap().as_u64(), Some(1));
    shutdown();
    join.join().unwrap();
}

#[test]
fn healthz_and_json_metrics_carry_build_and_telemetry_fields() {
    let (addr, join, shutdown) = start_with(Arc::new(Engine::new()), ephemeral());
    register_chip_and_cells(addr);
    let (status, body) = call(addr, "POST", "/v1/find", FIND_INV);
    assert_eq!(status, 200, "{body}");
    let doc = parse_json(&body);
    assert_eq!(doc.get("request_id").unwrap().as_u64(), Some(1));
    assert!(doc.get("wall_ns").unwrap().as_u64().is_some());
    assert!(doc.get("effort_spent").unwrap().as_u64().unwrap() > 0);

    let (status, body) = call(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let health = parse_json(&body);
    assert_eq!(
        health.get("version").unwrap().as_str(),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(health.get("uptime_seconds").unwrap().as_u64().is_some());
    assert!(health.get("schema_version").unwrap().as_u64().is_some());

    let (_, body) = call(addr, "GET", "/metrics", "");
    let doc = parse_json(&body);
    let server = doc.get("server").unwrap();
    assert_eq!(
        server.get("version").unwrap().as_str(),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(server.get("uptime_seconds").unwrap().as_u64().is_some());
    let telemetry = doc.get("telemetry").unwrap();
    let find = telemetry
        .get("endpoints")
        .unwrap()
        .get("find")
        .unwrap_or_else(|| panic!("{body}"));
    assert_eq!(find.get("requests").unwrap().as_u64(), Some(1));
    shutdown();
    join.join().unwrap();
}

#[test]
fn capture_ring_records_slow_requests_and_serves_them_by_id() {
    let engine = Arc::new(Engine::new());
    let config = ServeConfig {
        slow_ms: Some(0), // everything qualifies
        slow_keep: 2,
        ..ephemeral()
    };
    let (addr, join, shutdown) = start_with(engine, config);
    register_chip_and_cells(addr);
    for _ in 0..3 {
        let (status, body) = call(addr, "POST", "/v1/find", FIND_INV);
        assert_eq!(status, 200, "{body}");
    }
    let (status, body) = call(addr, "GET", "/v1/requests", "");
    assert_eq!(status, 200, "{body}");
    let list = parse_json(&body);
    let entries = list.get("requests").unwrap().as_arr().unwrap();
    // keep=2 evicted the oldest of the three; newest first.
    assert_eq!(entries.len(), 2, "{body}");
    assert_eq!(entries[0].get("request_id").unwrap().as_u64(), Some(3));
    assert_eq!(entries[1].get("request_id").unwrap().as_u64(), Some(2));
    assert_eq!(entries[0].get("route").unwrap().as_str(), Some("find"));
    assert_eq!(entries[0].get("circuit").unwrap().as_str(), Some("chip"));
    assert_eq!(
        entries[0].get("completeness").unwrap().as_str(),
        Some("complete")
    );

    let (status, body) = call(addr, "GET", "/v1/requests/3", "");
    assert_eq!(status, 200, "{body}");
    let captured = parse_json(&body);
    assert_eq!(captured.get("request_id").unwrap().as_u64(), Some(3));
    let report = captured.get("report").unwrap();
    assert_eq!(report.get("found").unwrap().as_u64(), Some(2));
    // The journal rode along even though the find response never
    // carries one: `trace_events` is forced while capture is on.
    let journal = captured.get("journal").unwrap().as_arr().unwrap();
    assert!(!journal.is_empty(), "{body}");
    assert!(
        journal
            .iter()
            .any(|e| e.get("event").and_then(json::Value::as_str) == Some("journal_end")),
        "{body}"
    );

    // Evicted and never-captured ids answer 404; garbage answers 400.
    let (status, _) = call(addr, "GET", "/v1/requests/1", "");
    assert_eq!(status, 404);
    let (status, _) = call(addr, "GET", "/v1/requests/zzz", "");
    assert_eq!(status, 400);
    shutdown();
    join.join().unwrap();
}

#[test]
fn capture_endpoints_answer_404_when_capture_is_off() {
    let (addr, join, shutdown) = start_with(Arc::new(Engine::new()), ephemeral());
    let (status, body) = call(addr, "GET", "/v1/requests", "");
    assert_eq!(status, 404);
    assert!(body.contains("--slow-ms"), "{body}");
    let (status, _) = call(addr, "GET", "/v1/requests/1", "");
    assert_eq!(status, 404);
    shutdown();
    join.join().unwrap();
}

#[test]
fn access_log_emits_one_ndjson_line_per_request() {
    let log_path = std::env::temp_dir().join(format!(
        "subg-observability-access-{}.ndjson",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&log_path);
    let config = ServeConfig {
        access_log: Some(log_path.to_string_lossy().into_owned()),
        ..ephemeral()
    };
    let (addr, join, shutdown) = start_with(Arc::new(Engine::new()), config);
    register_chip_and_cells(addr);
    let (status, _) = call(addr, "POST", "/v1/find", FIND_INV);
    assert_eq!(status, 200);
    let (status, _) = call(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);
    shutdown();
    join.join().unwrap();

    let text = std::fs::read_to_string(&log_path).expect("access log written");
    let lines: Vec<json::Value> = text.lines().map(parse_json).collect();
    assert_eq!(lines.len(), 4, "{text}");
    let find_line = lines
        .iter()
        .find(|l| l.get("route").and_then(json::Value::as_str) == Some("/v1/find"))
        .unwrap_or_else(|| panic!("{text}"));
    assert_eq!(find_line.get("status").unwrap().as_u64(), Some(200));
    assert_eq!(find_line.get("request_id").unwrap().as_u64(), Some(1));
    assert_eq!(find_line.get("circuit").unwrap().as_str(), Some("chip"));
    assert_eq!(find_line.get("pattern").unwrap().as_str(), Some("inv"));
    assert_eq!(
        find_line.get("completeness").unwrap().as_str(),
        Some("complete")
    );
    assert!(find_line.get("wall_ns").unwrap().as_u64().is_some());
    assert!(find_line.get("effort_spent").unwrap().as_u64().unwrap() > 0);
    let miss_line = lines
        .iter()
        .find(|l| l.get("route").and_then(json::Value::as_str) == Some("/v1/nope"))
        .unwrap();
    assert_eq!(miss_line.get("status").unwrap().as_u64(), Some(404));
    assert!(matches!(
        miss_line.get("request_id"),
        Some(json::Value::Null)
    ));
    let _ = std::fs::remove_file(&log_path);
}

/// Zero perturbation, end to end: a daemon with the access log, the
/// capture ring, and telemetry all active answers byte-identical find
/// responses (modulo its own wall-clock field) to a plain daemon.
#[test]
fn instrumented_daemon_answers_the_same_bytes_as_a_plain_one() {
    let strip_wall_ns = |body: &str| -> json::Value {
        let json::Value::Obj(fields) = parse_json(body) else {
            panic!("response is an object: {body}");
        };
        json::Value::Obj(fields.into_iter().filter(|(k, _)| k != "wall_ns").collect())
    };
    let log_path = std::env::temp_dir().join(format!(
        "subg-observability-perturb-{}.ndjson",
        std::process::id()
    ));
    let instrumented_config = ServeConfig {
        access_log: Some(log_path.to_string_lossy().into_owned()),
        slow_ms: Some(0),
        slow_keep: 8,
        ..ephemeral()
    };
    let (plain_addr, plain_join, plain_shutdown) = start_with(Arc::new(Engine::new()), ephemeral());
    let (inst_addr, inst_join, inst_shutdown) =
        start_with(Arc::new(Engine::new()), instrumented_config);
    for addr in [plain_addr, inst_addr] {
        register_chip_and_cells(addr);
    }
    // Deterministic options so the reports carry comparable fields.
    let req = r#"{"circuit": "chip", "pattern": {"library": "cells", "cell": "inv"}, "options": {"threads": 2, "prune": "never"}}"#;
    let (status_a, body_a) = call(plain_addr, "POST", "/v1/find", req);
    let (status_b, body_b) = call(inst_addr, "POST", "/v1/find", req);
    assert_eq!((status_a, status_b), (200, 200));
    assert_eq!(
        strip_wall_ns(&body_a),
        strip_wall_ns(&body_b),
        "instrumentation changed the response"
    );
    plain_shutdown();
    inst_shutdown();
    plain_join.join().unwrap();
    inst_join.join().unwrap();
    let _ = std::fs::remove_file(&log_path);
}
