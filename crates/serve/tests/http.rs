//! End-to-end daemon tests over real sockets: bind an ephemeral port,
//! drive the JSON API with a raw `TcpStream` client, and pin the
//! byte-identity contract — concurrent HTTP find responses must equal
//! the report a direct in-process `find_all` produces.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use subgemini::metrics::{json, outcome_to_json};
use subgemini::{find_all, MatchOptions};
use subgemini_engine::Engine;
use subgemini_serve::{DrainReport, ServeConfig, Server};

const CELLS: &str = "\
.global vdd gnd
.subckt inv a y
mp y a vdd vdd pmos
mn y a gnd gnd nmos
.ends
.subckt nand2 a b y
mp1 y a vdd vdd pmos
mp2 y b vdd vdd pmos
mn1 mid a y gnd nmos
mn2 gnd b mid gnd nmos
.ends
";

const CHIP: &str = "\
.global vdd gnd
mq1p w0 in vdd vdd pmos
mq1n w0 in gnd gnd nmos
mq2p w1 w0 vdd vdd pmos
mq2n w1 w0 gnd gnd nmos
mg1 out w1 vdd vdd pmos
mg2 out en vdd vdd pmos
mg3 m1 w1 out gnd nmos
mg4 gnd en m1 gnd nmos
";

/// Starts a daemon on an ephemeral port; returns its address, a join
/// handle resolving to the drain report, and a shutdown closure.
fn start_server(
    engine: Arc<Engine>,
    workers: usize,
) -> (SocketAddr, thread::JoinHandle<DrainReport>, impl Fn()) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        ..ServeConfig::default()
    };
    let server = Server::bind(engine, &config).expect("ephemeral bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let join = thread::spawn(move || server.run());
    (addr, join, move || handle.shutdown())
}

/// One HTTP request over a fresh connection; returns (status, body).
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn parse_json(body: &str) -> json::Value {
    json::parse(body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"))
}

#[test]
fn healthz_and_metrics_respond() {
    let (addr, join, shutdown) = start_server(Arc::new(Engine::new()), 2);
    let (status, body) = call(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(
        parse_json(&body).get("status").unwrap().as_str(),
        Some("ok")
    );
    let (status, body) = call(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let doc = parse_json(&body);
    assert!(doc.get("server").is_some(), "{body}");
    assert!(doc.get("engine").is_some(), "{body}");
    shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.drained, 0, "idle shutdown drains nothing");
    assert!(report.served >= 2);
}

#[test]
fn compile_register_find_flow() {
    let (addr, join, shutdown) = start_server(Arc::new(Engine::new()), 2);
    let (status, body) = call(addr, "POST", "/v1/circuits/chip", CHIP);
    assert_eq!(status, 200, "{body}");
    let doc = parse_json(&body);
    assert_eq!(doc.get("circuit").unwrap().as_str(), Some("chip"));
    assert_eq!(doc.get("devices").unwrap().as_u64(), Some(8));
    let (status, body) = call(addr, "POST", "/v1/libraries/cells", CELLS);
    assert_eq!(status, 200, "{body}");
    let cells = parse_json(&body);
    let names: Vec<&str> = cells
        .get("cells")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .filter_map(json::Value::as_str)
        .collect();
    assert_eq!(names, vec!["inv", "nand2"]);
    let (status, body) = call(
        addr,
        "POST",
        "/v1/find",
        r#"{"circuit": "chip", "pattern": {"library": "cells", "cell": "inv"}}"#,
    );
    assert_eq!(status, 200, "{body}");
    let doc = parse_json(&body);
    assert_eq!(doc.get("found").unwrap().as_u64(), Some(2));
    assert_eq!(doc.get("completeness").unwrap().as_str(), Some("complete"));
    assert_eq!(
        doc.get("instance_devices").unwrap().as_arr().unwrap().len(),
        2
    );
    // The registered-library sweep too.
    let (status, body) = call(
        addr,
        "POST",
        "/v1/survey",
        r#"{"circuit": "chip", "library": "cells"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let rows = parse_json(&body);
    let rows = rows.get("rows").unwrap().as_arr().unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get("cell").unwrap().as_str(), Some("inv"));
    assert_eq!(rows[0].get("found").unwrap().as_u64(), Some(2));
    shutdown();
    assert_eq!(join.join().unwrap().drained, 0);
}

#[test]
fn inline_find_and_explain_without_registration() {
    let (addr, join, shutdown) = start_server(Arc::new(Engine::new()), 2);
    let body = json::Value::Obj(vec![
        ("circuit_source".into(), json::Value::Str(CHIP.into())),
        (
            "pattern".into(),
            json::Value::Obj(vec![
                ("source".into(), json::Value::Str(CELLS.into())),
                ("cell".into(), json::Value::Str("inv".into())),
            ]),
        ),
    ])
    .compact();
    let (status, resp) = call(addr, "POST", "/v1/find", &body);
    assert_eq!(status, 200, "{resp}");
    assert_eq!(parse_json(&resp).get("found").unwrap().as_u64(), Some(2));
    let (status, resp) = call(addr, "POST", "/v1/explain", &body);
    assert_eq!(status, 200, "{resp}");
    let doc = parse_json(&resp);
    assert_eq!(doc.get("found").unwrap().as_u64(), Some(2));
    assert!(doc.get("explain").is_some(), "{resp}");
    assert!(doc.get("report").is_some(), "{resp}");
    shutdown();
    assert_eq!(join.join().unwrap().drained, 0);
}

#[test]
fn per_request_deadline_answers_truncated_like_the_cli() {
    let (addr, join, shutdown) = start_server(Arc::new(Engine::new()), 2);
    let (status, body) = call(addr, "POST", "/v1/circuits/chip", CHIP);
    assert_eq!(status, 200, "{body}");
    let (status, body) = call(
        addr,
        "POST",
        "/v1/find",
        r#"{"circuit": "chip", "pattern": {"source": ".subckt inv a y\nmp y a vdd vdd pmos\nmn y a gnd gnd nmos\n.ends\n", "cell": "inv"}, "options": {"deadline_ms": 0}}"#,
    );
    assert_eq!(status, 200, "a deadline miss is a valid truncated answer");
    let doc = parse_json(&body);
    assert_eq!(doc.get("completeness").unwrap().as_str(), Some("truncated"));
    assert_eq!(
        doc.get("truncation")
            .unwrap()
            .get("reason")
            .unwrap()
            .as_str(),
        Some("deadline_expired")
    );
    shutdown();
    join.join().unwrap();
}

#[test]
fn eight_concurrent_finds_are_byte_identical_to_direct_find_all() {
    let engine = Arc::new(Engine::new());
    let (addr, join, shutdown) = start_server(Arc::clone(&engine), 8);
    let (status, _) = call(addr, "POST", "/v1/circuits/chip", CHIP);
    assert_eq!(status, 200);
    let (status, _) = call(addr, "POST", "/v1/libraries/cells", CELLS);
    assert_eq!(status, 200);

    // The serial baseline: the same v1 report a cold CLI run prints.
    let main = subgemini_engine::source::parse_text(
        CHIP,
        subgemini_engine::source::SourceKind::Spice,
        "chip",
    )
    .and_then(|doc| subgemini_engine::source::main_from_doc(&doc, "chip", "chip"))
    .unwrap();
    let pattern_doc = subgemini_engine::source::parse_text(
        CELLS,
        subgemini_engine::source::SourceKind::Spice,
        "cells",
    )
    .unwrap();
    let pattern = subgemini_engine::source::load_cell(&pattern_doc, "inv", "cells").unwrap();
    let baseline = find_all(
        &pattern,
        &main,
        &MatchOptions {
            collect_metrics: true,
            prune: subgemini::PrunePolicy::Never,
            ..MatchOptions::default()
        },
    );
    let baseline_doc = outcome_to_json(&baseline);
    assert!(baseline.count() == 2);

    let request = r#"{"circuit": "chip", "pattern": {"library": "cells", "cell": "inv"}, "options": {"metrics": true, "prune": "never"}}"#;
    let responses: Vec<String> = thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(|| call(addr, "POST", "/v1/find", request)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (status, body) = h.join().unwrap();
                assert_eq!(status, 200, "{body}");
                body
            })
            .collect()
    });
    // The deterministic v1 report fields (everything except the
    // wall-clock `metrics` timers) plus the reject tallies buried in
    // the metrics counters.
    let deterministic = [
        "schema_version",
        "instances",
        "matched_device_total",
        "key",
        "phase1",
        "phase2",
        "completeness",
        "truncation",
    ];
    let reject_tallies = |doc: &json::Value| -> Vec<(String, u64)> {
        let json::Value::Obj(counters) = doc
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .expect("metrics were requested")
        else {
            panic!("counters is an object")
        };
        let mut tallies: Vec<(String, u64)> = counters
            .iter()
            .filter(|(k, _)| k.starts_with("reject."))
            .map(|(k, v)| (k.clone(), v.as_u64().unwrap()))
            .collect();
        tallies.sort();
        tallies
    };
    for body in &responses {
        let doc = parse_json(body);
        for key in deterministic {
            assert_eq!(
                doc.get(key),
                baseline_doc.get(key),
                "field `{key}` differs from the serial baseline"
            );
        }
        assert_eq!(reject_tallies(&doc), reject_tallies(&baseline_doc));
        assert_eq!(doc.get("found").unwrap().as_u64(), Some(2));
        // The deterministic fields also agree across all eight
        // responses (the timers legitimately differ per request).
        assert_eq!(
            doc.get("instance_devices"),
            parse_json(&responses[0]).get("instance_devices")
        );
    }
    shutdown();
    assert_eq!(join.join().unwrap().drained, 0);
}

#[test]
fn unknown_names_and_bad_bodies_map_to_http_errors() {
    let (addr, join, shutdown) = start_server(Arc::new(Engine::new()), 2);
    let (status, body) = call(
        addr,
        "POST",
        "/v1/find",
        r#"{"circuit": "ghost", "pattern": {"library": "none", "cell": "x"}}"#,
    );
    assert_eq!(status, 404, "{body}");
    assert!(parse_json(&body).get("error").is_some());
    let (status, _) = call(addr, "POST", "/v1/find", "not json at all");
    assert_eq!(status, 400);
    let (status, _) = call(addr, "POST", "/v1/circuits/chip", ".subckt broken");
    assert_eq!(status, 400);
    let (status, _) = call(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);
    let (status, _) = call(addr, "DELETE", "/healthz", "");
    assert_eq!(status, 405);
    shutdown();
    join.join().unwrap();
}

#[test]
fn shutdown_drains_in_flight_searches_via_cancel() {
    use subgemini_workloads::{cells, gen};
    let engine = Arc::new(Engine::new());
    engine.register_circuit("big", gen::ripple_adder(96).netlist);
    engine.register_library("lib", vec![cells::full_adder()]);
    let (addr, join, shutdown) = start_server(Arc::clone(&engine), 2);
    let request = r#"{"circuit": "big", "pattern": {"library": "lib", "cell": "full_adder"}}"#;
    let client = thread::spawn(move || call(addr, "POST", "/v1/find", request));
    // Let the request reach the search, then pull the plug while it is
    // (probably) still running.
    thread::sleep(Duration::from_millis(20));
    shutdown();
    let report = join.join().unwrap();
    let (status, body) = client.join().unwrap();
    // Race-proof contract: the client always gets a valid 200 — either
    // the search finished before the drain (complete) or the drain
    // cancelled it (truncated, reason `cancelled`, still a well-formed
    // report). Either way the server returned instead of hanging.
    assert_eq!(status, 200, "{body}");
    let doc = parse_json(&body);
    match doc.get("completeness").unwrap().as_str() {
        Some("complete") => {}
        Some("truncated") => {
            assert_eq!(
                doc.get("truncation")
                    .unwrap()
                    .get("reason")
                    .unwrap()
                    .as_str(),
                Some("cancelled"),
                "{body}"
            );
            assert_eq!(report.drained, 1, "a cancelled search was drained");
        }
        other => panic!("unexpected completeness {other:?} in {body}"),
    }
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let (addr, join, _shutdown) = start_server(Arc::new(Engine::new()), 2);
    let (status, body) = call(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(
        parse_json(&body).get("status").unwrap().as_str(),
        Some("shutting-down")
    );
    let report = join.join().unwrap();
    assert_eq!(report.drained, 0);
}

#[test]
fn hierarchize_endpoint_reports_planted_levels() {
    use subgemini_workloads::gen;
    let chip = gen::hierarchical_chip(2, 3, 250);
    let engine = Arc::new(Engine::new());
    engine.register_circuit("flatchip", chip.generated.netlist.clone());
    engine.register_library("cells", chip.library.clone());
    let (addr, join, shutdown) = start_server(Arc::clone(&engine), 2);
    let (status, body) = call(
        addr,
        "POST",
        "/v1/hierarchize",
        r#"{"circuit": "flatchip", "library": "cells"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let doc = parse_json(&body);
    // Responses name the netlist itself, same as find/survey.
    assert_eq!(
        doc.get("circuit").unwrap().as_str(),
        Some("hierarchical_chip")
    );
    let hier = doc.get("hierarchy").unwrap();
    assert_eq!(hier.get("unabsorbed_devices").unwrap().as_u64(), Some(0));
    let levels = hier.get("levels").unwrap().as_arr().unwrap();
    assert_eq!(levels.len(), 3);
    // Every planted count survives the HTTP round trip exactly.
    for level in levels {
        for row in level.get("cells").unwrap().as_arr().unwrap() {
            let cell = row.get("cell").unwrap().as_str().unwrap();
            let found = row.get("found").unwrap().as_u64().unwrap() as usize;
            assert_eq!(found, chip.expected_count(cell), "cell {cell}");
        }
    }
    let deck = doc.get("deck").unwrap().as_str().unwrap();
    assert!(deck.contains(".subckt pipeline_stage"), "{deck}");
    assert!(doc.get("rounds").unwrap().as_u64().unwrap() >= 3);
    // The route is registered for POST only.
    let (status, _) = call(addr, "GET", "/v1/hierarchize", "");
    assert_eq!(status, 405);
    shutdown();
    assert_eq!(join.join().unwrap().drained, 0);
}

#[test]
fn hierarchize_elaborates_inline_libraries_hierarchically() {
    // Regression: an inline library deck used to be flat-elaborated
    // like a find/survey pattern library, inlining a level-2 cell's
    // `X` instances to transistors — the level grouping then saw one
    // flat level and reported top-level counts only. The deck must
    // keep its `X` structure so the full tree comes back.
    let deck = "\
.global vdd gnd
.subckt inv a y
mp1 y a vdd pmos
mn1 y a gnd nmos
.ends
.subckt buf2 a y
xu1 a m inv
xu2 m y inv
.ends
";
    let flat = "\
.global vdd gnd
mp1 w0 in vdd pmos
mn1 w0 in gnd nmos
mp2 out w0 vdd pmos
mn2 out w0 gnd nmos
";
    let engine = Arc::new(Engine::new());
    let (addr, join, shutdown) = start_server(Arc::clone(&engine), 2);
    let (status, body) = call(addr, "POST", "/v1/circuits/flat", flat);
    assert_eq!(status, 200, "{body}");
    let req = format!(
        r#"{{"circuit": "flat", "library": {{"source": "{}"}}}}"#,
        deck.replace('\n', "\\n")
    );
    let (status, body) = call(addr, "POST", "/v1/hierarchize", &req);
    assert_eq!(status, 200, "{body}");
    let doc = parse_json(&body);
    let hier = doc.get("hierarchy").unwrap();
    let levels = hier.get("levels").unwrap().as_arr().unwrap();
    assert_eq!(levels.len(), 2, "{body}");
    let count = |lvl: &json::Value, cell: &str| {
        lvl.get("cells")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .find(|r| r.get("cell").unwrap().as_str() == Some(cell))
            .map(|r| r.get("found").unwrap().as_u64().unwrap())
    };
    assert_eq!(count(&levels[0], "inv"), Some(2));
    assert_eq!(count(&levels[1], "buf2"), Some(1));
    assert_eq!(hier.get("unabsorbed_devices").unwrap().as_u64(), Some(0));
    shutdown();
    assert_eq!(join.join().unwrap().drained, 0);
}

#[test]
fn oversized_headers_get_431_over_the_socket() {
    // Regression: an endless header used to grow the server's line
    // buffer without bound. Now it must answer 431 after a bounded
    // read instead of buffering the whole stream.
    let (addr, join, shutdown) = start_server(Arc::new(Engine::new()), 2);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Send exactly one byte past the header cap with no terminating
    // newline: enough to trip the limit, while leaving no unread bytes
    // behind (a close over unread data would RST the client and
    // discard the very response we are asserting on).
    let request_line = "GET /healthz HTTP/1.1\r\n";
    let header_prefix = "x-junk: ";
    let filler_len =
        subgemini_serve::http::MAX_HEADER_BYTES + 1 - request_line.len() - header_prefix.len();
    write!(stream, "{request_line}{header_prefix}").unwrap();
    stream.write_all(&vec![b'a'; filler_len]).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    assert!(
        raw.starts_with("HTTP/1.1 431 "),
        "expected 431 status line, got: {}",
        raw.lines().next().unwrap_or("")
    );
    drop(stream);
    // The server stays healthy for well-formed requests afterwards.
    let (status, _) = call(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    shutdown();
    join.join().unwrap();
}
