//! SIGINT/SIGTERM → graceful shutdown, without a signals crate.
//!
//! The handler does the only async-signal-safe thing possible: it
//! flips the server's shutdown `AtomicBool` through a process-global
//! `OnceLock`. The accept loop polls that flag every few milliseconds,
//! so `kill -INT <pid>` behaves exactly like `POST /v1/shutdown`:
//! accept stops, in-flight searches are cancelled, workers drain, and
//! the process exits through the normal `DrainReport` path.

use std::sync::Arc;
use std::sync::OnceLock;

use crate::{ServerState, ShutdownHandle};

static STATE: OnceLock<Arc<ServerState>> = OnceLock::new();

/// Installs SIGINT and SIGTERM handlers that request shutdown on the
/// given server. Only the first installed server wins the process-wide
/// slot (one daemon per process); on non-Unix platforms this is a
/// no-op.
pub fn install(handle: &ShutdownHandle) {
    let _ = STATE.set(Arc::clone(handle.state()));
    imp::install();
}

#[cfg(unix)]
mod imp {
    // `void (*)(int)` — typed as a proper fn pointer so no numeric
    // casts are involved (libc-free FFI).
    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> *const core::ffi::c_void;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a OnceLock read plus an atomic store.
        if let Some(state) = super::STATE.get() {
            state.request_shutdown();
        }
    }

    pub(super) fn install() {
        // SAFETY: `signal` is the POSIX libc symbol; `on_signal` is an
        // `extern "C" fn(i32)` matching the required handler signature
        // and only performs async-signal-safe atomic operations.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}
