//! The daemon's JSON API: URL dispatch plus the request/response glue
//! between HTTP bodies and engine requests.
//!
//! | Method | Path                  | Body                        | Answer |
//! |--------|-----------------------|-----------------------------|--------|
//! | GET    | `/healthz`            | —                           | status, uptime, version |
//! | GET    | `/metrics`            | —                           | server + engine counters + telemetry rollups |
//! | GET    | `/metrics?format=prometheus` | —                    | Prometheus text-format v0.0.4 |
//! | GET    | `/v1/requests`        | —                           | slow/truncated capture-ring summaries |
//! | GET    | `/v1/requests/{id}`   | —                           | one captured report + event journal |
//! | POST   | `/v1/circuits/{name}` | raw deck (`?format=spice\|verilog`) | compile info |
//! | POST   | `/v1/libraries/{name}`| raw deck of cell definitions | cell list |
//! | POST   | `/v1/find`            | JSON find request           | v1 report + instances |
//! | POST   | `/v1/survey`          | JSON survey request         | per-cell v1 reports |
//! | POST   | `/v1/explain`         | JSON find request           | explain report + v1 report |
//! | POST   | `/v1/hierarchize`     | JSON survey-shaped request  | hierarchy report + hierarchical deck |
//! | POST   | `/v1/shutdown`        | —                           | ack, then drain |
//!
//! Find/survey/explain bodies name a registered circuit (`"circuit":
//! "chip"`) or carry an inline one (`"circuit_source": "<deck>"`,
//! optional `"circuit_format"`); patterns name a registered library
//! cell (`"pattern": {"library": "lib", "cell": "inv"}`) or carry
//! inline source (`{"source": "<deck>", "cell": "inv"}`). The optional
//! `"options"` object maps one-to-one onto the CLI flags:
//! `ignore_globals`, `max_instances`, `threads`, `scheduler`,
//! `shards`, `metrics`, `events`, `max_effort`, `deadline_ms`,
//! `prune`. Every
//! request carries its own budget and cancel token — a deadline that
//! expires mid-search answers 200 with `"completeness": "truncated"`,
//! exactly like the CLI.
//!
//! `u64` digests are emitted as 16-digit hex strings: the JSON number
//! type (f64) cannot carry them exactly.

use std::sync::Arc;

use subgemini::metrics::json::{self, Value};
use subgemini::metrics::{outcome_to_json, REPORT_SCHEMA_VERSION};
use subgemini::telemetry::prometheus::TextWriter;
use subgemini_engine::source::{
    load_cell, load_cell_hierarchical, main_from_doc, parse_text, SourceKind,
};
use subgemini_engine::{
    CircuitSource, Engine, EngineError, ExplainRequest, FindRequest, FindResponse,
    HierarchizeRequest, HierarchizeResponse, LibrarySource, PatternSource, RequestOptions,
    SurveyRequest, SurveyResponse,
};
use subgemini_netlist::Netlist;

use crate::http::{Request, Response};
use crate::{CapturedRequest, ServerState};

/// Per-request correlation fields the search handlers report back to
/// the connection loop for the access log.
#[derive(Debug, Default)]
pub(crate) struct RequestMeta {
    pub(crate) request_id: Option<u64>,
    pub(crate) circuit: Option<String>,
    pub(crate) pattern: Option<String>,
    pub(crate) effort_spent: Option<u64>,
    pub(crate) completeness: Option<&'static str>,
}

/// Dispatches one parsed request.
pub(crate) fn route(
    engine: &Engine,
    state: &Arc<ServerState>,
    req: &Request,
    meta: &mut RequestMeta,
) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics(engine, state, req),
        ("GET", "/v1/requests") => list_captures(state),
        ("GET", path) if path.starts_with("/v1/requests/") => {
            get_capture(state, &path["/v1/requests/".len()..])
        }
        ("POST", "/v1/shutdown") => {
            state.request_shutdown();
            Response::json(
                200,
                Value::Obj(vec![("status".into(), Value::Str("shutting-down".into()))]).pretty(),
            )
        }
        ("POST", "/v1/find") => searching(state, |cancel| find(engine, state, req, cancel, meta)),
        ("POST", "/v1/explain") => {
            searching(state, |cancel| explain(engine, state, req, cancel, meta))
        }
        ("POST", "/v1/survey") => {
            searching(state, |cancel| survey(engine, state, req, cancel, meta))
        }
        ("POST", "/v1/hierarchize") => searching(state, |cancel| {
            hierarchize(engine, state, req, cancel, meta)
        }),
        ("POST", path) if path.starts_with("/v1/circuits/") => {
            register_circuit(engine, req, &path["/v1/circuits/".len()..])
        }
        ("POST", path) if path.starts_with("/v1/libraries/") => {
            register_library(engine, req, &path["/v1/libraries/".len()..])
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/requests" | "/v1/find" | "/v1/survey" | "/v1/explain"
            | "/v1/hierarchize" | "/v1/shutdown",
        ) => Response::error(405, "method not allowed"),
        (_, path) if path.starts_with("/v1/requests/") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such endpoint"),
    }
}

fn healthz(state: &Arc<ServerState>) -> Response {
    Response::json(
        200,
        Value::Obj(vec![
            ("status".into(), Value::Str("ok".into())),
            ("uptime_seconds".into(), Value::int(state.uptime_seconds())),
            (
                "version".into(),
                Value::Str(env!("CARGO_PKG_VERSION").into()),
            ),
            ("schema_version".into(), Value::int(REPORT_SCHEMA_VERSION)),
        ])
        .pretty(),
    )
}

/// Runs a search-shaped handler with an in-flight registration, so a
/// draining shutdown can cancel it.
fn searching(
    state: &Arc<ServerState>,
    f: impl FnOnce(subgemini::CancelToken) -> Response,
) -> Response {
    let (id, token) = state.begin_search();
    let response = f(token);
    state.finish_search(id);
    response
}

fn engine_failure(e: &EngineError) -> Response {
    let status = match e {
        EngineError::UnknownCircuit(_)
        | EngineError::UnknownLibrary(_)
        | EngineError::UnknownCell { .. } => 404,
        EngineError::Invalid(_) => 400,
    };
    Response::error(status, &e.to_string())
}

fn metrics(engine: &Engine, state: &Arc<ServerState>, req: &Request) -> Response {
    match req.query_value("format") {
        None | Some("json") => json_metrics(engine, state),
        Some("prometheus") => prometheus_metrics(engine, state),
        Some(other) => Response::error(
            400,
            &format!("format: `{other}` is not `json` or `prometheus`"),
        ),
    }
}

/// Prometheus text-format v0.0.4 exposition over the same counters and
/// telemetry rollups the JSON shape reports.
fn prometheus_metrics(engine: &Engine, state: &Arc<ServerState>) -> Response {
    let status = engine.status();
    let snap = &status.telemetry;
    let schema = REPORT_SCHEMA_VERSION.to_string();
    let mut w = TextWriter::new();
    w.gauge(
        "subg_build_info",
        "Build metadata; the value is always 1.",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            ("schema_version", &schema),
        ],
        1,
    );
    w.gauge(
        "subg_uptime_seconds",
        "Seconds since the daemon started.",
        &[],
        state.uptime_seconds(),
    );
    w.counter(
        "subg_connections_served_total",
        "Connections answered to completion.",
        &[],
        state.served(),
    );
    w.counter(
        "subg_http_errors_total",
        "Unparseable requests plus panicking handlers.",
        &[],
        state.http_errors(),
    );
    let [c2, c4, c5] = state.response_classes();
    for (class, v) in [("2xx", c2), ("4xx", c4), ("5xx", c5)] {
        w.counter(
            "subg_http_responses_total",
            "Responses by status class.",
            &[("class", class)],
            v,
        );
    }
    w.gauge(
        "subg_in_flight_searches",
        "Searches currently running.",
        &[],
        state.in_flight_count() as u64,
    );
    w.gauge(
        "subg_registered_circuits",
        "Circuits in the registry.",
        &[],
        status.circuits.len() as u64,
    );
    w.gauge(
        "subg_registered_libraries",
        "Pattern libraries in the registry.",
        &[],
        status.libraries.len() as u64,
    );
    for (kind, v) in &status.requests {
        w.counter(
            "subg_engine_requests_total",
            "Engine request counters by kind (includes `truncated`).",
            &[("kind", kind)],
            *v,
        );
    }
    for (endpoint, r) in &snap.endpoints {
        let labels = [("endpoint", endpoint.as_str())];
        w.counter(
            "subg_requests_total",
            "Completed search requests folded into telemetry.",
            &labels,
            r.requests,
        );
        w.counter(
            "subg_truncated_requests_total",
            "Requests that stopped early under a budget, deadline, or cancellation.",
            &labels,
            r.truncated,
        );
        w.histogram(
            "subg_request_wall_ns",
            "End-to-end search wall time in nanoseconds (log2 buckets).",
            &labels,
            &r.wall_ns,
        );
        w.histogram(
            "subg_request_effort",
            "Deterministic effort per request (log2 buckets).",
            &labels,
            &r.effort,
        );
        w.histogram(
            "subg_request_backtracks",
            "Phase II backtracks per request (log2 buckets).",
            &labels,
            &r.backtracks,
        );
        w.counter(
            "subg_pruned_candidates_total",
            "Candidates pruned by the fingerprint index.",
            &labels,
            r.pruned_candidates,
        );
        w.counter(
            "subg_admitted_candidates_total",
            "Candidates admitted past the fingerprint index.",
            &labels,
            r.admitted_candidates,
        );
        for (reason, v) in &r.truncation_reasons {
            w.counter(
                "subg_truncation_total",
                "Truncations by reason.",
                &[("endpoint", endpoint.as_str()), ("reason", reason.as_str())],
                *v,
            );
        }
        for (reason, v) in &r.reject_reasons {
            w.counter(
                "subg_reject_total",
                "Phase II candidate rejects by reason.",
                &[("endpoint", endpoint.as_str()), ("reason", reason.as_str())],
                *v,
            );
        }
    }
    for (circuit, r) in &snap.circuits {
        let labels = [("circuit", circuit.as_str())];
        w.counter(
            "subg_circuit_requests_total",
            "Completed requests per registered circuit.",
            &labels,
            r.requests,
        );
        w.histogram(
            "subg_circuit_wall_ns",
            "End-to-end search wall time per registered circuit (log2 buckets).",
            &labels,
            &r.wall_ns,
        );
        w.counter(
            "subg_circuit_pruned_candidates_total",
            "Candidates pruned by the circuit's fingerprint index.",
            &labels,
            r.pruned_candidates,
        );
        w.counter(
            "subg_circuit_admitted_candidates_total",
            "Candidates admitted past the circuit's fingerprint index.",
            &labels,
            r.admitted_candidates,
        );
    }
    Response::prometheus(w.finish())
}

fn json_metrics(engine: &Engine, state: &Arc<ServerState>) -> Response {
    let status = engine.status();
    let circuits = status
        .circuits
        .iter()
        .map(|c| {
            Value::Obj(vec![
                ("name".into(), Value::Str(c.name.clone())),
                ("devices".into(), Value::int(c.devices as u64)),
                ("nets".into(), Value::int(c.nets as u64)),
                ("digest".into(), Value::Str(format!("{:016x}", c.digest))),
                ("artifact_bytes".into(), Value::int(c.artifact_bytes as u64)),
            ])
        })
        .collect();
    let libraries = status
        .libraries
        .iter()
        .map(|(name, cells)| {
            Value::Obj(vec![
                ("name".into(), Value::Str(name.clone())),
                ("cells".into(), Value::int(*cells as u64)),
            ])
        })
        .collect();
    let requests = status
        .requests
        .iter()
        .map(|(k, v)| (k.to_string(), Value::int(*v)))
        .collect();
    let [c2, c4, c5] = state.response_classes();
    let doc = Value::Obj(vec![
        (
            "server".into(),
            Value::Obj(vec![
                ("served".into(), Value::int(state.served())),
                ("http_errors".into(), Value::int(state.http_errors())),
                (
                    "in_flight".into(),
                    Value::int(state.in_flight_count() as u64),
                ),
                ("uptime_seconds".into(), Value::int(state.uptime_seconds())),
                (
                    "version".into(),
                    Value::Str(env!("CARGO_PKG_VERSION").into()),
                ),
                ("schema_version".into(), Value::int(REPORT_SCHEMA_VERSION)),
                (
                    "responses".into(),
                    Value::Obj(vec![
                        ("2xx".into(), Value::int(c2)),
                        ("4xx".into(), Value::int(c4)),
                        ("5xx".into(), Value::int(c5)),
                    ]),
                ),
            ]),
        ),
        (
            "engine".into(),
            Value::Obj(vec![
                ("circuits".into(), Value::Arr(circuits)),
                ("libraries".into(), Value::Arr(libraries)),
                ("requests".into(), Value::Obj(requests)),
            ]),
        ),
        ("telemetry".into(), status.telemetry.to_json()),
    ]);
    Response::json(200, doc.pretty())
}

fn body_text(req: &Request) -> Result<&str, String> {
    std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_string())
}

fn body_format(req: &Request) -> Result<SourceKind, String> {
    match req.query_value("format") {
        None => Ok(SourceKind::Spice),
        Some(name) => SourceKind::from_name(name)
            .ok_or_else(|| format!("format: `{name}` is not `spice` or `verilog`")),
    }
}

fn register_circuit(engine: &Engine, req: &Request, name: &str) -> Response {
    if req.method != "POST" {
        return Response::error(405, "method not allowed");
    }
    if name.is_empty() || name.contains('/') {
        return Response::error(400, "circuit name must be a single non-empty path segment");
    }
    let parsed = body_text(req)
        .and_then(|text| body_format(req).map(|kind| (text, kind)))
        .and_then(|(text, kind)| parse_text(text, kind, name))
        .and_then(|doc| main_from_doc(&doc, name, name));
    match parsed {
        Ok(main) => {
            let info = engine.register_circuit(name, main);
            Response::json(
                200,
                Value::Obj(vec![
                    ("circuit".into(), Value::Str(info.name)),
                    ("devices".into(), Value::int(info.devices as u64)),
                    ("nets".into(), Value::int(info.nets as u64)),
                    ("digest".into(), Value::Str(format!("{:016x}", info.digest))),
                    (
                        "artifact_bytes".into(),
                        Value::int(info.artifact_bytes as u64),
                    ),
                ])
                .pretty(),
            )
        }
        Err(e) => Response::error(400, &e),
    }
}

fn cells_from_deck(text: &str, kind: SourceKind, label: &str) -> Result<Vec<Netlist>, String> {
    cells_from_deck_with(text, kind, label, load_cell)
}

/// One-level elaboration variant: `X` instances of other cells stay
/// composite devices, preserving the reference depth the hierarchize
/// route's level grouping needs.
fn cells_from_deck_hierarchical(
    text: &str,
    kind: SourceKind,
    label: &str,
) -> Result<Vec<Netlist>, String> {
    cells_from_deck_with(text, kind, label, load_cell_hierarchical)
}

fn cells_from_deck_with(
    text: &str,
    kind: SourceKind,
    label: &str,
    load: fn(&subgemini_engine::source::Doc, &str, &str) -> Result<Netlist, String>,
) -> Result<Vec<Netlist>, String> {
    let doc = parse_text(text, kind, label)?;
    let names = doc.cell_names();
    if names.is_empty() {
        return Err(format!("{label}: no cell definitions"));
    }
    names.iter().map(|name| load(&doc, name, label)).collect()
}

fn register_library(engine: &Engine, req: &Request, name: &str) -> Response {
    if req.method != "POST" {
        return Response::error(405, "method not allowed");
    }
    if name.is_empty() || name.contains('/') {
        return Response::error(400, "library name must be a single non-empty path segment");
    }
    let parsed = body_text(req)
        .and_then(|text| body_format(req).map(|kind| (text, kind)))
        .and_then(|(text, kind)| cells_from_deck(text, kind, name));
    match parsed {
        Ok(cells) => {
            let info = engine.register_library(name, cells);
            Response::json(
                200,
                Value::Obj(vec![
                    ("library".into(), Value::Str(info.name)),
                    (
                        "cells".into(),
                        Value::Arr(info.cells.into_iter().map(Value::Str).collect()),
                    ),
                ])
                .pretty(),
            )
        }
        Err(e) => Response::error(400, &e),
    }
}

/// The circuit named or embedded in a JSON request body.
enum BodyCircuit {
    Named(String),
    Inline(Box<Netlist>),
}

impl BodyCircuit {
    fn as_source(&self) -> CircuitSource<'_> {
        match self {
            BodyCircuit::Named(name) => CircuitSource::Registered(name),
            BodyCircuit::Inline(netlist) => CircuitSource::Inline(netlist),
        }
    }
}

fn circuit_from(body: &Value) -> Result<BodyCircuit, String> {
    if let Some(name) = body.get("circuit") {
        let name = name.as_str().ok_or("circuit: expected a string")?;
        return Ok(BodyCircuit::Named(name.to_string()));
    }
    if let Some(src) = body.get("circuit_source") {
        let text = src.as_str().ok_or("circuit_source: expected a string")?;
        let kind = match body.get("circuit_format") {
            None => SourceKind::Spice,
            Some(v) => {
                let name = v.as_str().ok_or("circuit_format: expected a string")?;
                SourceKind::from_name(name).ok_or_else(|| {
                    format!("circuit_format: `{name}` is not `spice` or `verilog`")
                })?
            }
        };
        let doc = parse_text(text, kind, "circuit_source")?;
        return main_from_doc(&doc, "circuit", "circuit_source")
            .map(|n| BodyCircuit::Inline(Box::new(n)));
    }
    Err("body needs `circuit` (a registered name) or `circuit_source` (an inline deck)".into())
}

/// The pattern named or embedded in a JSON request body.
enum BodyPattern {
    Library { library: String, cell: String },
    Inline(Box<Netlist>),
}

impl BodyPattern {
    fn as_source(&self) -> PatternSource<'_> {
        match self {
            BodyPattern::Library { library, cell } => PatternSource::Library { library, cell },
            BodyPattern::Inline(netlist) => PatternSource::Inline(netlist),
        }
    }
}

fn pattern_from(body: &Value) -> Result<BodyPattern, String> {
    let spec = body.get("pattern").ok_or("body needs a `pattern` object")?;
    if let Some(library) = spec.get("library") {
        let library = library
            .as_str()
            .ok_or("pattern.library: expected a string")?;
        let cell = spec
            .get("cell")
            .and_then(Value::as_str)
            .ok_or("pattern.cell: expected a string")?;
        return Ok(BodyPattern::Library {
            library: library.to_string(),
            cell: cell.to_string(),
        });
    }
    if let Some(src) = spec.get("source") {
        let text = src.as_str().ok_or("pattern.source: expected a string")?;
        let cell = spec
            .get("cell")
            .and_then(Value::as_str)
            .ok_or("pattern.cell: expected a string")?;
        let kind = match spec.get("format") {
            None => SourceKind::Spice,
            Some(v) => {
                let name = v.as_str().ok_or("pattern.format: expected a string")?;
                SourceKind::from_name(name).ok_or_else(|| {
                    format!("pattern.format: `{name}` is not `spice` or `verilog`")
                })?
            }
        };
        let doc = parse_text(text, kind, "pattern")?;
        return load_cell(&doc, cell, "pattern").map(|n| BodyPattern::Inline(Box::new(n)));
    }
    Err("pattern needs `library`+`cell` or `source`+`cell`".into())
}

fn expect_bool(key: &str, v: &Value) -> Result<bool, String> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("options.{key}: expected a boolean")),
    }
}

fn expect_count(key: &str, v: &Value) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("options.{key}: expected a non-negative integer"))
}

fn options_from(body: &Value) -> Result<RequestOptions, String> {
    let mut opts = RequestOptions::default();
    let Some(spec) = body.get("options") else {
        return Ok(opts);
    };
    let Value::Obj(fields) = spec else {
        return Err("options: expected an object".into());
    };
    let mut budget = subgemini::WorkBudget::default();
    for (key, v) in fields {
        match key.as_str() {
            "ignore_globals" => opts.respect_globals = !expect_bool(key, v)?,
            "max_instances" => opts.max_instances = expect_count(key, v)? as usize,
            "threads" => opts.threads = expect_count(key, v)? as usize,
            "scheduler" => {
                let name = v.as_str().ok_or("options.scheduler: expected a string")?;
                opts.scheduler = match name {
                    "steal" => subgemini::Phase2Scheduler::WorkStealing,
                    "static" => subgemini::Phase2Scheduler::StaticChunks,
                    other => {
                        return Err(format!(
                            "options.scheduler: `{other}` is not a scheduler (expected `steal` or `static`)"
                        ))
                    }
                };
            }
            "metrics" => opts.collect_metrics = expect_bool(key, v)?,
            "events" => opts.trace_events = expect_bool(key, v)?,
            "max_effort" => budget.max_effort = Some(expect_count(key, v)?),
            "deadline_ms" => budget.deadline_ms = Some(expect_count(key, v)?),
            "shards" => {
                opts.shards = match v {
                    Value::Str(s) if s == "auto" => subgemini::ShardPolicy::Auto,
                    Value::Str(s) if s == "off" => subgemini::ShardPolicy::Off,
                    _ => match v.as_u64() {
                        Some(n) => subgemini::ShardPolicy::Count(n as u32),
                        None => {
                            return Err(
                                "options.shards: expected `auto`, `off` or a shard count".into()
                            )
                        }
                    },
                };
            }
            "prune" => {
                let name = v.as_str().ok_or("options.prune: expected a string")?;
                opts.prune = match name {
                    "auto" => subgemini::PrunePolicy::Auto,
                    "always" => subgemini::PrunePolicy::Always,
                    "never" => subgemini::PrunePolicy::Never,
                    other => {
                        return Err(format!(
                            "options.prune: `{other}` is not a policy (expected `auto`, `always` or `never`)"
                        ))
                    }
                };
            }
            other => return Err(format!("options: unknown key `{other}`")),
        }
    }
    if !budget.is_unlimited() {
        opts.budget = Some(budget);
    }
    Ok(opts)
}

fn parse_body(req: &Request) -> Result<Value, String> {
    json::parse(body_text(req)?)
}

fn find_response_doc(resp: &FindResponse) -> Value {
    let Value::Obj(mut fields) = outcome_to_json(&resp.outcome) else {
        unreachable!("outcome_to_json answers an object");
    };
    // v1-additive: the base report keeps its exact field order; the
    // daemon appends its own fields after it.
    fields.push(("circuit".into(), Value::Str(resp.circuit.clone())));
    fields.push(("pattern".into(), Value::Str(resp.pattern.clone())));
    fields.push(("found".into(), Value::int(resp.outcome.count() as u64)));
    fields.push((
        "instance_devices".into(),
        Value::Arr(
            resp.instance_devices
                .iter()
                .map(|names| Value::Arr(names.iter().map(|n| Value::Str(n.clone())).collect()))
                .collect(),
        ),
    ));
    fields.push(("wall_ns".into(), Value::int(resp.wall_ns)));
    fields.push(("effort_spent".into(), Value::int(resp.effort_spent)));
    Value::Obj(fields)
}

/// `"complete"` / `"truncated"` for logs and captures.
fn completeness_str(outcome: &subgemini::MatchOutcome) -> &'static str {
    if outcome.completeness.is_truncated() {
        "truncated"
    } else {
        "complete"
    }
}

/// Serializes the outcome's event journal as NDJSON (empty string when
/// the search ran without `trace_events`).
fn journal_text(outcome: &subgemini::MatchOutcome) -> String {
    outcome
        .events
        .as_ref()
        .map(subgemini::events::journal_to_ndjson)
        .unwrap_or_default()
}

/// Offers a finished search to the capture ring, if one is configured
/// and the request qualifies (slow or truncated).
#[allow(clippy::too_many_arguments)]
fn maybe_capture(
    state: &Arc<ServerState>,
    route: &'static str,
    id: u64,
    circuit: &str,
    pattern: &str,
    wall_ns: u64,
    completeness: &'static str,
    report: &Value,
    journal: String,
) {
    let Some(ring) = state.capture() else {
        return;
    };
    if !ring.wants(wall_ns, completeness == "truncated") {
        return;
    }
    ring.push(CapturedRequest {
        id,
        route,
        circuit: circuit.to_string(),
        pattern: pattern.to_string(),
        wall_ns,
        completeness,
        report: report.pretty(),
        journal,
    });
}

fn list_captures(state: &Arc<ServerState>) -> Response {
    let Some(ring) = state.capture() else {
        return Response::error(
            404,
            "slow-request capture is off; start the daemon with --slow-ms to enable it",
        );
    };
    let entries = ring
        .entries()
        .into_iter()
        .map(|c| {
            Value::Obj(vec![
                ("request_id".into(), Value::int(c.id)),
                ("route".into(), Value::Str(c.route.into())),
                ("circuit".into(), Value::Str(c.circuit)),
                ("pattern".into(), Value::Str(c.pattern)),
                ("wall_ns".into(), Value::int(c.wall_ns)),
                ("completeness".into(), Value::Str(c.completeness.into())),
            ])
        })
        .collect();
    Response::json(
        200,
        Value::Obj(vec![("requests".into(), Value::Arr(entries))]).pretty(),
    )
}

fn get_capture(state: &Arc<ServerState>, id: &str) -> Response {
    let Some(ring) = state.capture() else {
        return Response::error(
            404,
            "slow-request capture is off; start the daemon with --slow-ms to enable it",
        );
    };
    let Ok(id) = id.parse::<u64>() else {
        return Response::error(400, "request id must be a non-negative integer");
    };
    let Some(c) = ring.get(id) else {
        return Response::error(
            404,
            "no captured request with that id (evicted or never slow)",
        );
    };
    let journal_lines = c
        .journal
        .lines()
        .map(|line| json::parse(line).unwrap_or_else(|_| Value::Str(line.to_string())))
        .collect();
    let report = json::parse(&c.report).unwrap_or(Value::Null);
    let doc = Value::Obj(vec![
        ("request_id".into(), Value::int(c.id)),
        ("route".into(), Value::Str(c.route.into())),
        ("circuit".into(), Value::Str(c.circuit)),
        ("pattern".into(), Value::Str(c.pattern)),
        ("wall_ns".into(), Value::int(c.wall_ns)),
        ("completeness".into(), Value::Str(c.completeness.into())),
        ("report".into(), report),
        ("journal".into(), Value::Arr(journal_lines)),
    ]);
    Response::json(200, doc.pretty())
}

fn survey_response_doc(resp: &SurveyResponse) -> Value {
    let rows = resp
        .rows
        .iter()
        .map(|row| {
            Value::Obj(vec![
                ("cell".into(), Value::Str(row.cell.clone())),
                ("found".into(), Value::int(row.outcome.count() as u64)),
                ("report".into(), outcome_to_json(&row.outcome)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("circuit".into(), Value::Str(resp.circuit.clone())),
        ("rows".into(), Value::Arr(rows)),
        ("request_id".into(), Value::int(resp.request_id)),
        ("wall_ns".into(), Value::int(resp.wall_ns)),
        ("effort_spent".into(), Value::int(resp.effort_spent)),
    ])
}

fn find(
    engine: &Engine,
    state: &Arc<ServerState>,
    req: &Request,
    cancel: subgemini::CancelToken,
    meta: &mut RequestMeta,
) -> Response {
    let prepared = parse_body(req).and_then(|body| {
        let circuit = circuit_from(&body)?;
        let pattern = pattern_from(&body)?;
        let options = options_from(&body)?;
        Ok((circuit, pattern, options))
    });
    let (circuit, pattern, mut options) = match prepared {
        Ok(p) => p,
        Err(e) => return Response::error(400, &e),
    };
    options.cancel = Some(cancel);
    // Capture needs the journal; the find response never serializes it,
    // so forcing it on does not change the response bytes.
    if state.capture().is_some() {
        options.trace_events = true;
    }
    match engine.find(&FindRequest {
        circuit: circuit.as_source(),
        pattern: pattern.as_source(),
        options,
    }) {
        Ok(resp) => {
            let completeness = completeness_str(&resp.outcome);
            meta.request_id = Some(resp.request_id);
            meta.circuit = Some(resp.circuit.clone());
            meta.pattern = Some(resp.pattern.clone());
            meta.effort_spent = Some(resp.effort_spent);
            meta.completeness = Some(completeness);
            let doc = find_response_doc(&resp);
            maybe_capture(
                state,
                "find",
                resp.request_id,
                &resp.circuit,
                &resp.pattern,
                resp.wall_ns,
                completeness,
                &doc,
                journal_text(&resp.outcome),
            );
            Response::json(200, doc.pretty())
        }
        Err(e) => engine_failure(&e),
    }
}

fn explain(
    engine: &Engine,
    state: &Arc<ServerState>,
    req: &Request,
    cancel: subgemini::CancelToken,
    meta: &mut RequestMeta,
) -> Response {
    let prepared = parse_body(req).and_then(|body| {
        let circuit = circuit_from(&body)?;
        let pattern = pattern_from(&body)?;
        let options = options_from(&body)?;
        Ok((circuit, pattern, options))
    });
    let (circuit, pattern, mut options) = match prepared {
        Ok(p) => p,
        Err(e) => return Response::error(400, &e),
    };
    options.cancel = Some(cancel);
    match engine.explain(&ExplainRequest {
        circuit: circuit.as_source(),
        pattern: pattern.as_source(),
        options,
    }) {
        Ok(resp) => {
            let completeness = completeness_str(&resp.outcome);
            meta.request_id = Some(resp.request_id);
            meta.circuit = Some(resp.circuit.clone());
            meta.pattern = Some(resp.pattern.clone());
            meta.effort_spent = Some(resp.effort_spent);
            meta.completeness = Some(completeness);
            let doc = Value::Obj(vec![
                ("circuit".into(), Value::Str(resp.circuit.clone())),
                ("pattern".into(), Value::Str(resp.pattern.clone())),
                ("found".into(), Value::int(resp.outcome.count() as u64)),
                ("explain".into(), resp.report.to_json()),
                ("report".into(), outcome_to_json(&resp.outcome)),
                ("request_id".into(), Value::int(resp.request_id)),
                ("wall_ns".into(), Value::int(resp.wall_ns)),
                ("effort_spent".into(), Value::int(resp.effort_spent)),
            ]);
            maybe_capture(
                state,
                "explain",
                resp.request_id,
                &resp.circuit,
                &resp.pattern,
                resp.wall_ns,
                completeness,
                &doc,
                journal_text(&resp.outcome),
            );
            Response::json(200, doc.pretty())
        }
        Err(e) => engine_failure(&e),
    }
}

/// The library named or embedded in a survey body.
enum BodyLibrary {
    Named(String),
    Inline(Vec<Netlist>),
}

impl BodyLibrary {
    fn as_source(&self) -> LibrarySource<'_> {
        match self {
            BodyLibrary::Named(name) => LibrarySource::Registered(name),
            BodyLibrary::Inline(cells) => LibrarySource::Inline(cells),
        }
    }
}

fn library_from(body: &Value) -> Result<BodyLibrary, String> {
    library_from_with(body, cells_from_deck)
}

/// [`library_from`] with one-level elaboration of inline decks — see
/// [`cells_from_deck_hierarchical`].
fn hierarchical_library_from(body: &Value) -> Result<BodyLibrary, String> {
    library_from_with(body, cells_from_deck_hierarchical)
}

fn library_from_with(
    body: &Value,
    load: fn(&str, SourceKind, &str) -> Result<Vec<Netlist>, String>,
) -> Result<BodyLibrary, String> {
    let spec = body
        .get("library")
        .ok_or("body needs a `library` (name or object)")?;
    if let Some(name) = spec.as_str() {
        return Ok(BodyLibrary::Named(name.to_string()));
    }
    if let Some(src) = spec.get("source") {
        let text = src.as_str().ok_or("library.source: expected a string")?;
        let kind = match spec.get("format") {
            None => SourceKind::Spice,
            Some(v) => {
                let name = v.as_str().ok_or("library.format: expected a string")?;
                SourceKind::from_name(name).ok_or_else(|| {
                    format!("library.format: `{name}` is not `spice` or `verilog`")
                })?
            }
        };
        return load(text, kind, "library").map(BodyLibrary::Inline);
    }
    Err("library needs a registered name or a `source` deck".into())
}

fn survey(
    engine: &Engine,
    state: &Arc<ServerState>,
    req: &Request,
    cancel: subgemini::CancelToken,
    meta: &mut RequestMeta,
) -> Response {
    let prepared = parse_body(req).and_then(|body| {
        let circuit = circuit_from(&body)?;
        let library = library_from(&body)?;
        let options = options_from(&body)?;
        Ok((circuit, library, options))
    });
    let (circuit, library, mut options) = match prepared {
        Ok(p) => p,
        Err(e) => return Response::error(400, &e),
    };
    options.cancel = Some(cancel);
    // Same reasoning as `find`: survey rows never serialize journals.
    if state.capture().is_some() {
        options.trace_events = true;
    }
    let library_label = match &library {
        BodyLibrary::Named(name) => format!("library:{name}"),
        BodyLibrary::Inline(_) => "library:(inline)".to_string(),
    };
    match engine.survey(&SurveyRequest {
        circuit: circuit.as_source(),
        library: library.as_source(),
        options,
    }) {
        Ok(resp) => {
            let truncated = resp
                .rows
                .iter()
                .any(|r| r.outcome.completeness.is_truncated());
            let completeness = if truncated { "truncated" } else { "complete" };
            meta.request_id = Some(resp.request_id);
            meta.circuit = Some(resp.circuit.clone());
            meta.pattern = Some(library_label.clone());
            meta.effort_spent = Some(resp.effort_spent);
            meta.completeness = Some(completeness);
            let doc = survey_response_doc(&resp);
            // One journal per row; concatenated NDJSON keeps each
            // row's `journal_end` trailer as the separator.
            let journal = resp
                .rows
                .iter()
                .map(|r| journal_text(&r.outcome))
                .collect::<Vec<_>>()
                .concat();
            maybe_capture(
                state,
                "survey",
                resp.request_id,
                &resp.circuit,
                &library_label,
                resp.wall_ns,
                completeness,
                &doc,
                journal,
            );
            Response::json(200, doc.pretty())
        }
        Err(e) => engine_failure(&e),
    }
}

fn hierarchize_response_doc(resp: &HierarchizeResponse) -> Value {
    Value::Obj(vec![
        ("circuit".into(), Value::Str(resp.circuit.clone())),
        ("hierarchy".into(), resp.report.to_json()),
        ("deck".into(), Value::Str(resp.deck.clone())),
        ("rounds".into(), Value::int(resp.rounds as u64)),
        ("request_id".into(), Value::int(resp.request_id)),
        ("wall_ns".into(), Value::int(resp.wall_ns)),
    ])
}

fn hierarchize(
    engine: &Engine,
    state: &Arc<ServerState>,
    req: &Request,
    cancel: subgemini::CancelToken,
    meta: &mut RequestMeta,
) -> Response {
    let prepared = parse_body(req).and_then(|body| {
        let circuit = circuit_from(&body)?;
        // Inline decks keep one level of `X`-instance structure: flat
        // elaboration (what `library_from` does for find/survey
        // patterns) would erase the reference depth the level grouping
        // reconstructs. Registered libraries pass through as stored —
        // libraries uploaded over HTTP are flattened at registration,
        // so a full tree needs the library inline in the request.
        let library = hierarchical_library_from(&body)?;
        let options = options_from(&body)?;
        Ok((circuit, library, options))
    });
    let (circuit, library, mut options) = match prepared {
        Ok(p) => p,
        Err(e) => return Response::error(400, &e),
    };
    options.cancel = Some(cancel);
    let library_label = match &library {
        BodyLibrary::Named(name) => format!("library:{name}"),
        BodyLibrary::Inline(_) => "library:(inline)".to_string(),
    };
    match engine.hierarchize(&HierarchizeRequest {
        circuit: circuit.as_source(),
        library: library.as_source(),
        options,
    }) {
        Ok(resp) => {
            let truncated = resp.report.levels.iter().any(|l| l.truncated_cells > 0);
            let completeness = if truncated { "truncated" } else { "complete" };
            meta.request_id = Some(resp.request_id);
            meta.circuit = Some(resp.circuit.clone());
            meta.pattern = Some(library_label.clone());
            meta.completeness = Some(completeness);
            let doc = hierarchize_response_doc(&resp);
            // Hierarchize rounds carry no per-match journals; capture
            // records the report document alone.
            maybe_capture(
                state,
                "hierarchize",
                resp.request_id,
                &resp.circuit,
                &library_label,
                resp.wall_ns,
                completeness,
                &doc,
                String::new(),
            );
            Response::json(200, doc.pretty())
        }
        Err(e) => engine_failure(&e),
    }
}
