//! Matching-as-a-service: a dependency-free HTTP/1.1 + JSON daemon
//! over the [`subgemini_engine`] session layer.
//!
//! The paper's algorithm is built to be run repeatedly — a pattern
//! library swept over one big main circuit — and the engine registry
//! makes the compile-once/query-many split explicit. This crate is the
//! long-lived front end: a std-`TcpListener` accept loop feeding a
//! small worker thread pool, one HTTP request per connection
//! (`Connection: close`), JSON bodies built on the existing v1 report
//! schema. No external dependencies; the HTTP layer is ~200 lines of
//! plain std.
//!
//! Lifecycle:
//!
//! 1. [`Server::bind`] binds the address (`127.0.0.1:0` picks an
//!    ephemeral port — read it back via [`Server::local_addr`]).
//! 2. [`Server::run`] serves until shutdown is requested — by SIGINT /
//!    SIGTERM (see [`signal::install`]) or a `POST /v1/shutdown`.
//! 3. Shutdown drains: the accept loop stops, every in-flight search's
//!    [`CancelToken`] is tripped (searches finish promptly with
//!    `completeness: truncated (cancelled)` — a valid, reported
//!    prefix), workers finish writing their responses, and
//!    [`Server::run`] returns a [`DrainReport`] whose `drained` count
//!    says how many searches were interrupted (0 on an idle shutdown).

use std::collections::{HashMap, VecDeque};
use std::io;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use subgemini::metrics::json::Value;
use subgemini::CancelToken;
use subgemini_engine::Engine;

pub mod http;
mod routes;
pub mod signal;

use routes::RequestMeta;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 = ephemeral).
    pub addr: String,
    /// Worker threads handling connections (≥ 1).
    pub workers: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// NDJSON access log target: a file path, or `-` for stdout.
    /// `None` (default) logs nothing.
    pub access_log: Option<String>,
    /// Capture full reports + event journals of requests slower than
    /// this many milliseconds (and of every truncated request) in a
    /// bounded ring served at `GET /v1/requests`. `None` (default)
    /// disables capture.
    pub slow_ms: Option<u64>,
    /// Capture-ring capacity: how many slow/truncated requests are
    /// kept (oldest evicted first).
    pub slow_keep: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            max_body_bytes: 16 << 20,
            access_log: None,
            slow_ms: None,
            slow_keep: 32,
        }
    }
}

/// The structured NDJSON access log: one compact JSON line per HTTP
/// request, flushed per line so tails see it promptly.
pub(crate) struct AccessLog {
    sink: Mutex<Box<dyn io::Write + Send>>,
}

impl AccessLog {
    fn open(target: &str) -> io::Result<AccessLog> {
        let sink: Box<dyn io::Write + Send> = if target == "-" {
            Box::new(io::stdout())
        } else {
            Box::new(std::fs::File::create(target)?)
        };
        Ok(AccessLog {
            sink: Mutex::new(sink),
        })
    }

    pub(crate) fn write_line(&self, line: &str) {
        let mut sink = self.sink.lock().expect("access log poisoned");
        let _ = writeln!(sink, "{line}");
        let _ = sink.flush();
    }
}

/// One slow/truncated request kept in the capture ring: everything
/// needed to answer "why was request N slow?" after the fact.
#[derive(Clone, Debug)]
pub(crate) struct CapturedRequest {
    pub(crate) id: u64,
    pub(crate) route: &'static str,
    pub(crate) circuit: String,
    pub(crate) pattern: String,
    pub(crate) wall_ns: u64,
    pub(crate) completeness: &'static str,
    /// The full response report, pretty JSON.
    pub(crate) report: String,
    /// The merged event journal as NDJSON (requests run with
    /// `trace_events` forced on while capture is configured).
    pub(crate) journal: String,
}

/// A bounded ring of [`CapturedRequest`]s (oldest evicted first).
pub(crate) struct CaptureRing {
    slow_ns: u64,
    keep: usize,
    ring: Mutex<VecDeque<CapturedRequest>>,
}

impl CaptureRing {
    fn new(slow_ms: u64, keep: usize) -> Self {
        Self {
            slow_ns: slow_ms.saturating_mul(1_000_000),
            keep: keep.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Whether a finished request qualifies for capture.
    pub(crate) fn wants(&self, wall_ns: u64, truncated: bool) -> bool {
        truncated || wall_ns >= self.slow_ns
    }

    pub(crate) fn push(&self, captured: CapturedRequest) {
        let mut ring = self.ring.lock().expect("capture ring poisoned");
        if ring.len() == self.keep {
            ring.pop_front();
        }
        ring.push_back(captured);
    }

    /// Newest-first summaries of every held capture.
    pub(crate) fn entries(&self) -> Vec<CapturedRequest> {
        let ring = self.ring.lock().expect("capture ring poisoned");
        ring.iter().rev().cloned().collect()
    }

    pub(crate) fn get(&self, id: u64) -> Option<CapturedRequest> {
        let ring = self.ring.lock().expect("capture ring poisoned");
        ring.iter().rev().find(|c| c.id == id).cloned()
    }
}

/// Shared mutable server state: the shutdown flag, counters, and the
/// registry of in-flight searches' cancel tokens.
pub(crate) struct ServerState {
    shutdown: AtomicBool,
    served: AtomicU64,
    http_errors: AtomicU64,
    /// Responses by status class: `[2xx, 4xx, 5xx]`.
    responses: [AtomicU64; 3],
    next_search: AtomicU64,
    in_flight: Mutex<HashMap<u64, CancelToken>>,
    started: Instant,
    access_log: Option<AccessLog>,
    capture: Option<CaptureRing>,
}

impl ServerState {
    fn new(config: &ServeConfig) -> io::Result<Self> {
        let access_log = match config.access_log.as_deref() {
            Some(target) => Some(AccessLog::open(target)?),
            None => None,
        };
        Ok(Self {
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            responses: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            next_search: AtomicU64::new(0),
            in_flight: Mutex::new(HashMap::new()),
            started: Instant::now(),
            access_log,
            capture: config
                .slow_ms
                .map(|slow_ms| CaptureRing::new(slow_ms, config.slow_keep)),
        })
    }

    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Registers a search about to run; its token is tripped on
    /// shutdown. The id must be passed back to
    /// [`ServerState::finish_search`] when the search returns.
    pub(crate) fn begin_search(&self) -> (u64, CancelToken) {
        let id = self.next_search.fetch_add(1, Ordering::Relaxed);
        let token = CancelToken::new();
        self.in_flight
            .lock()
            .expect("in-flight registry poisoned")
            .insert(id, token.clone());
        (id, token)
    }

    pub(crate) fn finish_search(&self, id: u64) {
        self.in_flight
            .lock()
            .expect("in-flight registry poisoned")
            .remove(&id);
    }

    /// Cancels every in-flight search; returns how many were running.
    fn cancel_in_flight(&self) -> usize {
        let map = self.in_flight.lock().expect("in-flight registry poisoned");
        for token in map.values() {
            token.cancel();
        }
        map.len()
    }

    pub(crate) fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    pub(crate) fn http_errors(&self) -> u64 {
        self.http_errors.load(Ordering::Relaxed)
    }

    pub(crate) fn in_flight_count(&self) -> usize {
        self.in_flight
            .lock()
            .expect("in-flight registry poisoned")
            .len()
    }

    /// Bumps the status-class counter for one finished response.
    fn note_response(&self, status: u16) {
        let class = match status {
            200..=299 => 0,
            400..=499 => 1,
            _ => 2,
        };
        self.responses[class].fetch_add(1, Ordering::Relaxed);
    }

    /// Responses served by status class: `[2xx, 4xx, 5xx]`.
    pub(crate) fn response_classes(&self) -> [u64; 3] {
        [
            self.responses[0].load(Ordering::Relaxed),
            self.responses[1].load(Ordering::Relaxed),
            self.responses[2].load(Ordering::Relaxed),
        ]
    }

    /// Whole seconds since the server state was created.
    pub(crate) fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The slow/truncated-request capture ring, when configured.
    pub(crate) fn capture(&self) -> Option<&CaptureRing> {
        self.capture.as_ref()
    }
}

/// Builds the one-line access-log record for a finished request.
fn access_line(
    meta: &RequestMeta,
    method: Option<&str>,
    route: Option<&str>,
    status: u16,
    wall_ns: u64,
) -> String {
    let opt_str = |v: Option<&str>| v.map_or(Value::Null, |s| Value::Str(s.to_string()));
    let opt_int = |v: Option<u64>| v.map_or(Value::Null, Value::int);
    Value::Obj(vec![
        ("request_id".into(), opt_int(meta.request_id)),
        ("method".into(), opt_str(method)),
        ("route".into(), opt_str(route)),
        ("status".into(), Value::int(u64::from(status))),
        ("wall_ns".into(), Value::int(wall_ns)),
        ("effort_spent".into(), opt_int(meta.effort_spent)),
        ("completeness".into(), opt_str(meta.completeness)),
        ("circuit".into(), opt_str(meta.circuit.as_deref())),
        ("pattern".into(), opt_str(meta.pattern.as_deref())),
    ])
    .compact()
}

/// A clonable handle that asks a running server to shut down (used by
/// the signal handler and tests).
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
}

impl ShutdownHandle {
    /// Requests shutdown; the accept loop notices within one poll tick.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    pub(crate) fn state(&self) -> &Arc<ServerState> {
        &self.state
    }
}

/// What a finished server did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// Connections served to completion.
    pub served: u64,
    /// In-flight searches cancelled (drained) at shutdown — 0 for a
    /// clean idle shutdown.
    pub drained: usize,
}

/// A bound, not-yet-running daemon.
pub struct Server {
    engine: Arc<Engine>,
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: usize,
    max_body_bytes: usize,
}

impl Server {
    /// Binds the configured address.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(engine: Arc<Engine>, config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        // Nonblocking accept so the loop can poll the shutdown flag.
        listener.set_nonblocking(true)?;
        Ok(Server {
            engine,
            listener,
            state: Arc::new(ServerState::new(config)?),
            workers: config.workers.max(1),
            max_body_bytes: config.max_body_bytes,
        })
    }

    /// The resolved bound address (the actual port when binding `:0`).
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (cannot happen for a
    /// freshly bound listener).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has addr")
    }

    /// A handle that requests shutdown from another thread or a signal
    /// handler.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until shutdown is requested, then drains and returns.
    pub fn run(self) -> DrainReport {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let rx = Arc::clone(&rx);
            let engine = Arc::clone(&self.engine);
            let state = Arc::clone(&self.state);
            let max_body = self.max_body_bytes;
            handles.push(thread::spawn(move || loop {
                // Holding the lock only for recv() keeps hand-off fair
                // enough for a small pool.
                let stream = rx.lock().expect("worker queue poisoned").recv();
                match stream {
                    Ok(stream) => handle_connection(stream, &engine, &state, max_body),
                    Err(_) => break, // sender dropped: shutdown
                }
            }));
        }
        while !self.state.is_shutting_down() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
        // Drain: trip every in-flight search's token (they complete as
        // truncated-with-reason-cancelled), stop feeding workers, and
        // let them finish writing responses.
        let drained = self.state.cancel_in_flight();
        drop(tx);
        for h in handles {
            let _ = h.join();
        }
        DrainReport {
            served: self.state.served(),
            drained,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    state: &Arc<ServerState>,
    max_body: usize,
) {
    // Workers block on their own sockets; generous timeouts keep a
    // stalled client from wedging a worker forever.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let mut reader = io::BufReader::new(stream);
    let t0 = Instant::now();
    let mut meta = RequestMeta::default();
    let mut request_line: Option<(String, String)> = None;
    let response = match http::read_request(&mut reader, max_body) {
        Ok(request) => {
            request_line = Some((request.method.clone(), request.path.clone()));
            // A panicking handler (e.g. a degenerate uploaded pattern
            // hitting a core precondition) must not shrink the worker
            // pool: catch it and answer 500.
            let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                routes::route(engine, state, &request, &mut meta)
            }));
            match handled {
                Ok(response) => response,
                Err(_) => {
                    state.http_errors.fetch_add(1, Ordering::Relaxed);
                    http::Response::error(500, "internal error handling the request")
                }
            }
        }
        Err(e) => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            http::Response::error(e.status(), e.message())
        }
    };
    state.note_response(response.status);
    if let Some(log) = &state.access_log {
        let (method, route) = match &request_line {
            Some((m, p)) => (Some(m.as_str()), Some(p.as_str())),
            None => (None, None),
        };
        log.write_line(&access_line(
            &meta,
            method,
            route,
            response.status,
            t0.elapsed().as_nanos() as u64,
        ));
    }
    let mut stream = reader.into_inner();
    if response.write_to(&mut stream).is_ok() {
        state.served.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_finish_search_bookkeeping() {
        let state = ServerState::new(&ServeConfig::default()).unwrap();
        let (a, _ta) = state.begin_search();
        let (b, tb) = state.begin_search();
        assert_ne!(a, b);
        assert_eq!(state.in_flight_count(), 2);
        state.finish_search(a);
        assert_eq!(state.cancel_in_flight(), 1);
        assert!(tb.is_cancelled());
        state.finish_search(b);
        assert_eq!(state.in_flight_count(), 0);
    }

    #[test]
    fn shutdown_handle_flips_flag() {
        let state = Arc::new(ServerState::new(&ServeConfig::default()).unwrap());
        let handle = ShutdownHandle {
            state: Arc::clone(&state),
        };
        assert!(!state.is_shutting_down());
        handle.shutdown();
        assert!(state.is_shutting_down());
    }
}
