//! Matching-as-a-service: a dependency-free HTTP/1.1 + JSON daemon
//! over the [`subgemini_engine`] session layer.
//!
//! The paper's algorithm is built to be run repeatedly — a pattern
//! library swept over one big main circuit — and the engine registry
//! makes the compile-once/query-many split explicit. This crate is the
//! long-lived front end: a std-`TcpListener` accept loop feeding a
//! small worker thread pool, one HTTP request per connection
//! (`Connection: close`), JSON bodies built on the existing v1 report
//! schema. No external dependencies; the HTTP layer is ~200 lines of
//! plain std.
//!
//! Lifecycle:
//!
//! 1. [`Server::bind`] binds the address (`127.0.0.1:0` picks an
//!    ephemeral port — read it back via [`Server::local_addr`]).
//! 2. [`Server::run`] serves until shutdown is requested — by SIGINT /
//!    SIGTERM (see [`signal::install`]) or a `POST /v1/shutdown`.
//! 3. Shutdown drains: the accept loop stops, every in-flight search's
//!    [`CancelToken`] is tripped (searches finish promptly with
//!    `completeness: truncated (cancelled)` — a valid, reported
//!    prefix), workers finish writing their responses, and
//!    [`Server::run`] returns a [`DrainReport`] whose `drained` count
//!    says how many searches were interrupted (0 on an idle shutdown).

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use subgemini::CancelToken;
use subgemini_engine::Engine;

pub mod http;
mod routes;
pub mod signal;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 = ephemeral).
    pub addr: String,
    /// Worker threads handling connections (≥ 1).
    pub workers: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            max_body_bytes: 16 << 20,
        }
    }
}

/// Shared mutable server state: the shutdown flag, counters, and the
/// registry of in-flight searches' cancel tokens.
pub(crate) struct ServerState {
    shutdown: AtomicBool,
    served: AtomicU64,
    http_errors: AtomicU64,
    next_search: AtomicU64,
    in_flight: Mutex<HashMap<u64, CancelToken>>,
}

impl ServerState {
    fn new() -> Self {
        Self {
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            next_search: AtomicU64::new(0),
            in_flight: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Registers a search about to run; its token is tripped on
    /// shutdown. The id must be passed back to
    /// [`ServerState::finish_search`] when the search returns.
    pub(crate) fn begin_search(&self) -> (u64, CancelToken) {
        let id = self.next_search.fetch_add(1, Ordering::Relaxed);
        let token = CancelToken::new();
        self.in_flight
            .lock()
            .expect("in-flight registry poisoned")
            .insert(id, token.clone());
        (id, token)
    }

    pub(crate) fn finish_search(&self, id: u64) {
        self.in_flight
            .lock()
            .expect("in-flight registry poisoned")
            .remove(&id);
    }

    /// Cancels every in-flight search; returns how many were running.
    fn cancel_in_flight(&self) -> usize {
        let map = self.in_flight.lock().expect("in-flight registry poisoned");
        for token in map.values() {
            token.cancel();
        }
        map.len()
    }

    pub(crate) fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    pub(crate) fn http_errors(&self) -> u64 {
        self.http_errors.load(Ordering::Relaxed)
    }

    pub(crate) fn in_flight_count(&self) -> usize {
        self.in_flight
            .lock()
            .expect("in-flight registry poisoned")
            .len()
    }
}

/// A clonable handle that asks a running server to shut down (used by
/// the signal handler and tests).
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ServerState>,
}

impl ShutdownHandle {
    /// Requests shutdown; the accept loop notices within one poll tick.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    pub(crate) fn state(&self) -> &Arc<ServerState> {
        &self.state
    }
}

/// What a finished server did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// Connections served to completion.
    pub served: u64,
    /// In-flight searches cancelled (drained) at shutdown — 0 for a
    /// clean idle shutdown.
    pub drained: usize,
}

/// A bound, not-yet-running daemon.
pub struct Server {
    engine: Arc<Engine>,
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: usize,
    max_body_bytes: usize,
}

impl Server {
    /// Binds the configured address.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(engine: Arc<Engine>, config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        // Nonblocking accept so the loop can poll the shutdown flag.
        listener.set_nonblocking(true)?;
        Ok(Server {
            engine,
            listener,
            state: Arc::new(ServerState::new()),
            workers: config.workers.max(1),
            max_body_bytes: config.max_body_bytes,
        })
    }

    /// The resolved bound address (the actual port when binding `:0`).
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (cannot happen for a
    /// freshly bound listener).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has addr")
    }

    /// A handle that requests shutdown from another thread or a signal
    /// handler.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until shutdown is requested, then drains and returns.
    pub fn run(self) -> DrainReport {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let rx = Arc::clone(&rx);
            let engine = Arc::clone(&self.engine);
            let state = Arc::clone(&self.state);
            let max_body = self.max_body_bytes;
            handles.push(thread::spawn(move || loop {
                // Holding the lock only for recv() keeps hand-off fair
                // enough for a small pool.
                let stream = rx.lock().expect("worker queue poisoned").recv();
                match stream {
                    Ok(stream) => handle_connection(stream, &engine, &state, max_body),
                    Err(_) => break, // sender dropped: shutdown
                }
            }));
        }
        while !self.state.is_shutting_down() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
        // Drain: trip every in-flight search's token (they complete as
        // truncated-with-reason-cancelled), stop feeding workers, and
        // let them finish writing responses.
        let drained = self.state.cancel_in_flight();
        drop(tx);
        for h in handles {
            let _ = h.join();
        }
        DrainReport {
            served: self.state.served(),
            drained,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    state: &Arc<ServerState>,
    max_body: usize,
) {
    // Workers block on their own sockets; generous timeouts keep a
    // stalled client from wedging a worker forever.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let mut reader = io::BufReader::new(stream);
    let response = match http::read_request(&mut reader, max_body) {
        Ok(request) => {
            // A panicking handler (e.g. a degenerate uploaded pattern
            // hitting a core precondition) must not shrink the worker
            // pool: catch it and answer 500.
            let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                routes::route(engine, state, &request)
            }));
            match handled {
                Ok(response) => response,
                Err(_) => {
                    state.http_errors.fetch_add(1, Ordering::Relaxed);
                    http::Response::error(500, "internal error handling the request")
                }
            }
        }
        Err(e) => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            http::Response::error(400, &e)
        }
    };
    let mut stream = reader.into_inner();
    if response.write_to(&mut stream).is_ok() {
        state.served.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_finish_search_bookkeeping() {
        let state = ServerState::new();
        let (a, _ta) = state.begin_search();
        let (b, tb) = state.begin_search();
        assert_ne!(a, b);
        assert_eq!(state.in_flight_count(), 2);
        state.finish_search(a);
        assert_eq!(state.cancel_in_flight(), 1);
        assert!(tb.is_cancelled());
        state.finish_search(b);
        assert_eq!(state.in_flight_count(), 0);
    }

    #[test]
    fn shutdown_handle_flips_flag() {
        let state = Arc::new(ServerState::new());
        let handle = ShutdownHandle {
            state: Arc::clone(&state),
        };
        assert!(!state.is_shutting_down());
        handle.shutdown();
        assert!(state.is_shutting_down());
    }
}
