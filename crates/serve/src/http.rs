//! Minimal HTTP/1.1 framing: just enough server-side parsing and
//! emission for the daemon's JSON API. One request per connection,
//! `Connection: close`, `Content-Length` bodies only (no chunked
//! encoding, no keep-alive, no percent-decoding — the API never needs
//! them).

use std::io::{BufRead, Read, Write};

/// Cap on the total bytes of the request line plus all headers. A
/// client streaming an endless header (or one with no newline at all)
/// used to balloon `read_line`'s buffer without bound — the 16 MiB
/// body cap only guards bytes *after* the blank line. 16 KiB is far
/// beyond anything the JSON API sends and matches common server
/// defaults.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Why a request could not be read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadError {
    /// The request line plus headers exceeded [`MAX_HEADER_BYTES`];
    /// answered `431 Request Header Fields Too Large`.
    HeadersTooLarge(String),
    /// Anything else — malformed framing, oversized body, socket
    /// problems; answered `400 Bad Request`.
    Bad(String),
}

impl ReadError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ReadError::HeadersTooLarge(_) => 431,
            ReadError::Bad(_) => 400,
        }
    }

    /// The front-end-ready message.
    pub fn message(&self) -> &str {
        match self {
            ReadError::HeadersTooLarge(m) | ReadError::Bad(m) => m,
        }
    }
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl From<&str> for ReadError {
    fn from(m: &str) -> Self {
        ReadError::Bad(m.to_string())
    }
}

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method verb, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// The path without its query string.
    pub path: String,
    /// Decoded-as-is `key=value` query pairs, in order.
    pub query: Vec<(String, String)>,
    /// The raw body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A response ready to emit.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `content-type` header value (JSON everywhere except the
    /// Prometheus exposition).
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body: body.into_bytes(),
            content_type: "application/json",
        }
    }

    /// A Prometheus text-format v0.0.4 response.
    pub fn prometheus(body: String) -> Response {
        Response {
            status: 200,
            body: body.into_bytes(),
            content_type: "text/plain; version=0.0.4",
        }
    }

    /// A JSON error envelope: `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> Response {
        let doc = subgemini::metrics::json::Value::Obj(vec![(
            "error".to_string(),
            subgemini::metrics::json::Value::Str(message.to_string()),
        )]);
        Response::json(status, doc.pretty())
    }

    /// Serializes the status line, headers, and body.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            _ => "Internal Server Error",
        };
        write!(
            w,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reads one `\n`-terminated line, charging its bytes against
/// `remaining`. The underlying read is capped at `remaining + 1`
/// bytes, so a line that never ends consumes bounded memory before it
/// is rejected.
fn read_capped_line(r: &mut impl BufRead, remaining: &mut usize) -> Result<String, ReadError> {
    let mut line = String::new();
    let mut limited = r.by_ref().take(*remaining as u64 + 1);
    limited
        .read_line(&mut line)
        .map_err(|e| ReadError::Bad(e.to_string()))?;
    if line.len() > *remaining {
        return Err(ReadError::HeadersTooLarge(format!(
            "request line and headers exceed the {MAX_HEADER_BYTES}-byte limit"
        )));
    }
    *remaining -= line.len();
    Ok(line)
}

/// Reads and parses one request from a buffered stream.
///
/// # Errors
///
/// Request line + headers over [`MAX_HEADER_BYTES`] as
/// [`ReadError::HeadersTooLarge`]; malformed framing, bodies over
/// `max_body` bytes, and socket errors as [`ReadError::Bad`].
pub fn read_request(r: &mut impl BufRead, max_body: usize) -> Result<Request, ReadError> {
    let mut header_budget = MAX_HEADER_BYTES;
    let line = read_capped_line(r, &mut header_budget)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or("empty request line")?
        .to_ascii_uppercase();
    let target = parts.next().ok_or("request line has no path")?;
    if parts.next().is_none() {
        return Err("request line has no HTTP version".into());
    }
    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let query = query_text
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    let mut content_length = 0usize;
    loop {
        let header = read_capped_line(r, &mut header_budget)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Bad("bad content-length".to_string()))?;
            }
        }
    }
    if content_length > max_body {
        return Err(ReadError::Bad(format!(
            "body of {content_length} bytes exceeds the {max_body}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)
        .map_err(|e| ReadError::Bad(e.to_string()))?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, ReadError> {
        read_request(&mut text.as_bytes(), 1024)
    }

    #[test]
    fn parses_request_with_body_and_query() {
        let req = parse(
            "POST /v1/circuits/chip?format=spice HTTP/1.1\r\ncontent-length: 5\r\nHost: x\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/circuits/chip");
        assert_eq!(req.query_value("format"), Some("spice"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_bodyless_get() {
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_body() {
        let err = parse("POST /x HTTP/1.1\r\ncontent-length: 9999\r\n\r\n").unwrap_err();
        assert!(err.message().contains("exceeds"), "{err}");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn caps_total_header_bytes() {
        // One endless header line, never newline-terminated: must be
        // rejected after a bounded read, not buffered forever.
        let mut text = String::from("GET /healthz HTTP/1.1\r\nx-junk: ");
        text.push_str(&"a".repeat(64 * 1024));
        let err = parse(&text).unwrap_err();
        assert!(matches!(err, ReadError::HeadersTooLarge(_)), "{err}");
        assert_eq!(err.status(), 431);

        // Many small headers that sum past the cap hit the same limit.
        let mut text = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..2048 {
            text.push_str(&format!("x-h{i}: 0123456789abcdef\r\n"));
        }
        text.push_str("\r\n");
        let err = parse(&text).unwrap_err();
        assert_eq!(err.status(), 431);

        // A request just under the cap still parses.
        let mut text = String::from("GET /healthz HTTP/1.1\r\n");
        text.push_str(&format!("x-pad: {}\r\n\r\n", "b".repeat(8 * 1024)));
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn rejects_malformed_request_line() {
        assert!(parse("GET\r\n\r\n").is_err());
        assert!(parse("GET /x\r\n\r\n").is_err());
    }

    #[test]
    fn response_frames_body() {
        let mut out = Vec::new();
        Response::json(200, "{}\n".into())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 3\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}\n"), "{text}");
    }
}
