//! The partition-refinement engine behind [`compare`](crate::compare).

use std::collections::HashMap;

use subgemini_netlist::{hashing, CompiledCircuit, DeviceId, NetId, Netlist, Vertex};

use crate::report::{GeminiOutcome, GeminiStats, Mapping, MismatchReport};

/// Tuning knobs for a comparison run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GeminiOptions {
    /// Maximum individuation guesses before giving up on automorphism
    /// breaking (prevents exponential blowups on pathological graphs).
    pub max_guesses: usize,
}

impl Default for GeminiOptions {
    fn default() -> Self {
        Self {
            max_guesses: 100_000,
        }
    }
}

/// One side's labeling state.
#[derive(Clone)]
struct Side<'g> {
    graph: &'g CompiledCircuit,
    dev: Vec<u64>,
    net: Vec<u64>,
    dev_pinned: Vec<bool>,
    net_pinned: Vec<bool>,
}

impl<'g> Side<'g> {
    fn new(graph: &'g CompiledCircuit) -> Self {
        let nd = graph.device_count();
        let nn = graph.net_count();
        let dev = (0..nd)
            .map(|i| graph.initial_device_label(DeviceId::new(i as u32)))
            .collect();
        let mut net = Vec::with_capacity(nn);
        let mut net_pinned = Vec::with_capacity(nn);
        for i in 0..nn {
            let n = NetId::new(i as u32);
            net.push(graph.initial_net_label(n));
            // Global nets carry fixed name-derived labels.
            net_pinned.push(graph.is_global(n));
        }
        Self {
            graph,
            dev,
            net,
            dev_pinned: vec![false; nd],
            net_pinned,
        }
    }

    /// One relabeling pass: nets from devices, then devices from the
    /// fresh net labels (Gauss–Seidel order, identical on both sides).
    fn pass(&mut self) {
        for i in 0..self.net.len() {
            if self.net_pinned[i] {
                continue;
            }
            let n = NetId::new(i as u32);
            let c = self.graph.net_contribs(n, |d| Some(self.dev[d.index()]));
            self.net[i] = hashing::relabel(self.net[i], c.sum);
        }
        for i in 0..self.dev.len() {
            if self.dev_pinned[i] {
                continue;
            }
            let d = DeviceId::new(i as u32);
            let c = self.graph.device_contribs(d, |n| Some(self.net[n.index()]));
            self.dev[i] = hashing::relabel(self.dev[i], c.sum);
        }
    }

    fn pin(&mut self, v: Vertex, label: u64) {
        match v {
            Vertex::Device(d) => {
                self.dev[d.index()] = label;
                self.dev_pinned[d.index()] = true;
            }
            Vertex::Net(n) => {
                self.net[n.index()] = label;
                self.net_pinned[n.index()] = true;
            }
        }
    }
}

/// Balance summary of one partition-comparison step.
struct Balance {
    partitions: usize,
    all_singletons: bool,
    /// Smallest balanced partition with more than one member:
    /// `(members_in_a, members_in_b)`.
    ambiguous: Option<(Vec<Vertex>, Vec<Vertex>)>,
}

/// Groups both sides by label and checks that every partition is
/// balanced; collects diagnostics on failure.
fn check_balance(a: &Side<'_>, b: &Side<'_>) -> Result<Balance, MismatchReport> {
    // Keyed separately per bipartite side to avoid cross-kind collisions.
    let mut parts: HashMap<(bool, u64), (Vec<Vertex>, Vec<Vertex>)> = HashMap::new();
    for (i, &l) in a.dev.iter().enumerate() {
        parts
            .entry((false, l))
            .or_default()
            .0
            .push(Vertex::Device(DeviceId::new(i as u32)));
    }
    for (i, &l) in a.net.iter().enumerate() {
        parts
            .entry((true, l))
            .or_default()
            .0
            .push(Vertex::Net(NetId::new(i as u32)));
    }
    for (i, &l) in b.dev.iter().enumerate() {
        parts
            .entry((false, l))
            .or_default()
            .1
            .push(Vertex::Device(DeviceId::new(i as u32)));
    }
    for (i, &l) in b.net.iter().enumerate() {
        parts
            .entry((true, l))
            .or_default()
            .1
            .push(Vertex::Net(NetId::new(i as u32)));
    }
    let mut suspects_a = Vec::new();
    let mut suspects_b = Vec::new();
    let mut all_singletons = true;
    let mut ambiguous: Option<(Vec<Vertex>, Vec<Vertex>)> = None;
    for (va, vb) in parts.values() {
        if va.len() != vb.len() {
            suspects_a.extend(va.iter().take(8).copied());
            suspects_b.extend(vb.iter().take(8).copied());
            continue;
        }
        if va.len() > 1 {
            all_singletons = false;
            let better = match &ambiguous {
                None => true,
                Some((cur, _)) => {
                    // Prefer smaller partitions; tie-break toward devices
                    // (their neighborhoods refine faster).
                    va.len() < cur.len()
                        || (va.len() == cur.len() && va[0].is_device() && !cur[0].is_device())
                }
            };
            if better {
                ambiguous = Some((va.clone(), vb.clone()));
            }
        }
    }
    if !suspects_a.is_empty() || !suspects_b.is_empty() {
        suspects_a.sort();
        suspects_b.sort();
        return Err(MismatchReport {
            reason: "partition sizes diverged during refinement".into(),
            suspects_a,
            suspects_b,
        });
    }
    Ok(Balance {
        partitions: parts.len(),
        all_singletons,
        ambiguous,
    })
}

fn build_mapping(a: &Side<'_>, b: &Side<'_>) -> Mapping {
    let mut dev_of: HashMap<u64, DeviceId> = HashMap::with_capacity(b.dev.len());
    for (i, &l) in b.dev.iter().enumerate() {
        dev_of.insert(l, DeviceId::new(i as u32));
    }
    let mut net_of: HashMap<u64, NetId> = HashMap::with_capacity(b.net.len());
    for (i, &l) in b.net.iter().enumerate() {
        net_of.insert(l, NetId::new(i as u32));
    }
    Mapping {
        devices: a.dev.iter().map(|l| dev_of[l]).collect(),
        nets: a.net.iter().map(|l| net_of[l]).collect(),
    }
}

/// Structurally verifies a candidate mapping (guards against the
/// negligible-but-possible 64-bit label collision).
pub(crate) fn verify_mapping(a: &Netlist, b: &Netlist, m: &Mapping) -> Result<(), String> {
    for da in a.device_ids() {
        let db = m.device(da);
        let ta = a.device_type_of(da);
        let tb = b.device_type_of(db);
        if ta.name() != tb.name() {
            return Err(format!(
                "device {da} type `{}` maps to `{}`",
                ta.name(),
                tb.name()
            ));
        }
        let mut pa: Vec<(u64, NetId)> = a
            .device(da)
            .pins()
            .iter()
            .enumerate()
            .map(|(i, &n)| (ta.class_multiplier(i), m.net(n)))
            .collect();
        let mut pb: Vec<(u64, NetId)> = b
            .device(db)
            .pins()
            .iter()
            .enumerate()
            .map(|(i, &n)| (tb.class_multiplier(i), n))
            .collect();
        pa.sort_unstable();
        pb.sort_unstable();
        if pa != pb {
            return Err(format!("device {da} pin structure does not map onto {db}"));
        }
    }
    for na in a.net_ids() {
        let nb = m.net(na);
        let ra = a.net_ref(na);
        let rb = b.net_ref(nb);
        if ra.degree() != rb.degree() {
            return Err(format!("net {na} degree differs from its image {nb}"));
        }
        if ra.is_global() != rb.is_global() || (ra.is_global() && ra.name() != rb.name()) {
            return Err(format!("net {na} global status/name differs from {nb}"));
        }
    }
    Ok(())
}

fn fresh_guess_label(counter: usize) -> u64 {
    hashing::mix(0x4745_4d49_4e49_u64 ^ (counter as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn solve(
    mut a: Side<'_>,
    mut b: Side<'_>,
    opts: &GeminiOptions,
    stats: &mut GeminiStats,
) -> Result<Mapping, MismatchReport> {
    let mut prev_partitions = 0usize;
    let ambiguous = loop {
        a.pass();
        b.pass();
        stats.passes += 1;
        let bal = check_balance(&a, &b)?;
        if bal.all_singletons {
            return Ok(build_mapping(&a, &b));
        }
        if bal.partitions <= prev_partitions {
            break bal.ambiguous.expect("non-singleton partitions exist");
        }
        prev_partitions = bal.partitions;
    };
    // Automorphic tie: individuate one vertex and try each possible
    // image, backtracking on failure (paper Fig. 5 situation, whole-graph
    // variant).
    let (pa, pb) = ambiguous;
    let anchor = pa[0];
    let mut last_err = None;
    for &cand in &pb {
        if stats.guesses >= opts.max_guesses {
            return Err(MismatchReport {
                reason: format!("gave up after {} individuation guesses", stats.guesses),
                suspects_a: vec![anchor],
                suspects_b: pb.clone(),
            });
        }
        stats.guesses += 1;
        let label = fresh_guess_label(stats.guesses);
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        a2.pin(anchor, label);
        b2.pin(cand, label);
        match solve(a2, b2, opts, stats) {
            Ok(m) => return Ok(m),
            Err(e) => {
                stats.backtracks += 1;
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or(MismatchReport {
        reason: "ambiguous partition has no members to try".into(),
        suspects_a: vec![anchor],
        suspects_b: vec![],
    }))
}

/// Compares two netlists, returning the outcome plus effort counters.
pub(crate) fn run(a: &Netlist, b: &Netlist, opts: &GeminiOptions) -> (GeminiOutcome, GeminiStats) {
    let mut stats = GeminiStats::default();
    if a.device_count() != b.device_count() || a.net_count() != b.net_count() {
        return (
            GeminiOutcome::Mismatch(MismatchReport {
                reason: format!(
                    "size differs: A has {} devices / {} nets, B has {} / {}",
                    a.device_count(),
                    a.net_count(),
                    b.device_count(),
                    b.net_count()
                ),
                suspects_a: vec![],
                suspects_b: vec![],
            }),
            stats,
        );
    }
    if a.device_count() == 0 && a.net_count() == 0 {
        return (
            GeminiOutcome::Isomorphic(Mapping {
                devices: vec![],
                nets: vec![],
            }),
            stats,
        );
    }
    let ga = CompiledCircuit::compile(a);
    let gb = CompiledCircuit::compile(b);
    let sa = Side::new(&ga);
    let sb = Side::new(&gb);
    match solve(sa, sb, opts, &mut stats) {
        Ok(m) => match verify_mapping(a, b, &m) {
            Ok(()) => (GeminiOutcome::Isomorphic(m), stats),
            Err(reason) => (
                GeminiOutcome::Mismatch(MismatchReport {
                    reason: format!("label-derived mapping failed verification: {reason}"),
                    suspects_a: vec![],
                    suspects_b: vec![],
                }),
                stats,
            ),
        },
        Err(e) => (GeminiOutcome::Mismatch(e), stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Size-mismatch fast path (the refinement loop is exercised through
    /// the public API tests in lib.rs).
    #[test]
    fn size_mismatch_short_circuits() {
        let a = Netlist::new("a");
        let mut b = Netlist::new("b");
        b.net("x");
        let (out, stats) = run(&a, &b, &GeminiOptions::default());
        assert!(!out.is_isomorphic());
        assert_eq!(stats.passes, 0);
        assert!(out.mismatch().unwrap().reason.contains("size differs"));
    }

    #[test]
    fn empty_netlists_are_isomorphic() {
        let a = Netlist::new("a");
        let b = Netlist::new("b");
        let (out, _) = run(&a, &b, &GeminiOptions::default());
        assert!(out.is_isomorphic());
    }

    #[test]
    fn guess_labels_are_distinct() {
        let l1 = fresh_guess_label(1);
        let l2 = fresh_guess_label(2);
        assert_ne!(l1, l2);
    }
}
