//! Gemini-style whole-netlist graph isomorphism.
//!
//! This crate reimplements the *graph* isomorphism algorithm of
//! Gemini (Ebeling & Zajicek, reference \[3\] of the SubGemini paper),
//! which SubGemini extends to *subgraph* isomorphism. Two netlists are
//! compared by iterative partition refinement: vertices are labeled
//! from invariants (device type, net degree), then repeatedly relabeled
//! from their neighbors' labels through class-weighted sums. Isomorphic
//! netlists refine to identical singleton partitions, which directly
//! yield the vertex mapping; automorphic ties are broken by
//! individuation with backtracking.
//!
//! Used in this reproduction as (a) the historical substrate SubGemini
//! builds on, (b) an LVS-style netlist comparator (see the `lvs`
//! example), and (c) an independent checker for extracted subcircuit
//! instances.
//!
//! # Examples
//!
//! ```
//! use subgemini_netlist::Netlist;
//! use subgemini_gemini::compare;
//!
//! # fn main() -> Result<(), subgemini_netlist::NetlistError> {
//! let build = |swap: bool| -> Result<Netlist, subgemini_netlist::NetlistError> {
//!     let mut nl = Netlist::new("inv");
//!     let mos = nl.add_mos_types();
//!     let (a, y, vdd, gnd) = (nl.net("a"), nl.net("y"), nl.net("vdd"), nl.net("gnd"));
//!     nl.mark_global(vdd);
//!     nl.mark_global(gnd);
//!     // Listing source/drain in either order must not matter.
//!     let pins = if swap { [a, y, vdd] } else { [a, vdd, y] };
//!     nl.add_device("mp", mos.pmos, &pins)?;
//!     nl.add_device("mn", mos.nmos, &[a, gnd, y])?;
//!     Ok(nl)
//! };
//! let a = build(false)?;
//! let b = build(true)?;
//! assert!(compare(&a, &b).is_isomorphic());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fingerprint;
mod refine;
mod report;

use subgemini_netlist::Netlist;

pub use fingerprint::{dedup_classes, fingerprint};
pub use refine::GeminiOptions;
pub use report::{GeminiOutcome, GeminiReport, GeminiStats, Mapping, MismatchReport};

/// Compares netlists `a` and `b` with default options.
///
/// Returns a verified [`Mapping`] when the netlists are isomorphic
/// (respecting device types, terminal equivalence classes, and global
/// net names) or a [`MismatchReport`] pointing at the divergence.
pub fn compare(a: &Netlist, b: &Netlist) -> GeminiOutcome {
    compare_with_stats(a, b, &GeminiOptions::default()).outcome
}

/// Compares netlists and reports effort counters alongside the outcome.
pub fn compare_with_stats(a: &Netlist, b: &Netlist, opts: &GeminiOptions) -> GeminiReport {
    let (outcome, stats) = refine::run(a, b, opts);
    GeminiReport { outcome, stats }
}

/// Convenience predicate: `true` iff the netlists are isomorphic.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::Netlist;
/// assert!(subgemini_gemini::are_isomorphic(
///     &Netlist::new("a"),
///     &Netlist::new("b"),
/// ));
/// ```
pub fn are_isomorphic(a: &Netlist, b: &Netlist) -> bool {
    compare(a, b).is_isomorphic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgemini_netlist::{Netlist, NetlistError};

    /// A NAND2 built with a chosen device order and net naming scheme.
    fn nand2(prefix: &str, reorder: bool) -> Result<Netlist, NetlistError> {
        let mut nl = Netlist::new("nand2");
        let mos = nl.add_mos_types();
        let n = |s: &str| format!("{prefix}{s}");
        let (a, b, y) = (nl.net(n("a")), nl.net(n("b")), nl.net(n("y")));
        let mid = nl.net(n("mid"));
        let (vdd, gnd) = (nl.net("vdd"), nl.net("gnd"));
        nl.mark_global(vdd);
        nl.mark_global(gnd);
        let devs: Vec<(String, _, [_; 3])> = vec![
            (n("p1"), mos.pmos, [a, vdd, y]),
            (n("p2"), mos.pmos, [b, vdd, y]),
            (n("n1"), mos.nmos, [a, y, mid]),
            (n("n2"), mos.nmos, [b, mid, gnd]),
        ];
        let order: Vec<usize> = if reorder {
            vec![3, 1, 0, 2]
        } else {
            vec![0, 1, 2, 3]
        };
        for i in order {
            let (name, ty, pins) = &devs[i];
            nl.add_device(name.clone(), *ty, pins)?;
        }
        Ok(nl)
    }

    #[test]
    fn renamed_and_reordered_nand_matches() {
        let a = nand2("x_", false).unwrap();
        let b = nand2("zz", true).unwrap();
        let rep = compare_with_stats(&a, &b, &GeminiOptions::default());
        assert!(rep.outcome.is_isomorphic(), "{:?}", rep.outcome.mismatch());
        let m = rep.outcome.mapping().unwrap();
        // Mapping respects names-by-structure: x_mid maps to zzmid.
        let mid_a = a.find_net("x_mid").unwrap();
        assert_eq!(b.net_ref(m.net(mid_a)).name(), "zzmid");
    }

    #[test]
    fn swapped_inputs_of_nand_still_match() {
        // NAND(a,b) vs NAND(b,a) are isomorphic as graphs.
        let a = nand2("", false).unwrap();
        let mut b = nand2("", false).unwrap();
        b.set_name("other");
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn miswired_nand_detected() {
        let a = nand2("", false).unwrap();
        // Build a broken variant: n2's source goes to y instead of gnd
        // (short-circuits the pull-down chain differently).
        let mut b = Netlist::new("bad");
        let mos = b.add_mos_types();
        let (pa, pb, y, mid) = (b.net("a"), b.net("b"), b.net("y"), b.net("mid"));
        let (vdd, gnd) = (b.net("vdd"), b.net("gnd"));
        b.mark_global(vdd);
        b.mark_global(gnd);
        b.add_device("p1", mos.pmos, &[pa, vdd, y]).unwrap();
        b.add_device("p2", mos.pmos, &[pb, vdd, y]).unwrap();
        b.add_device("n1", mos.nmos, &[pa, y, mid]).unwrap();
        b.add_device("n2", mos.nmos, &[pb, mid, y]).unwrap(); // wrong
        let out = compare(&a, &b);
        assert!(!out.is_isomorphic());
        let report = out.mismatch().unwrap();
        assert!(!report.reason.is_empty());
    }

    #[test]
    fn type_swap_detected() {
        let a = nand2("", false).unwrap();
        let b = nand2("", false).unwrap();
        // Rebuild b with one transistor's type flipped.
        let mut c = Netlist::new("flip");
        let mos = c.add_mos_types();
        for d in b.device_ids() {
            let dev = b.device(d).clone();
            let ty = if dev.name() == "n2" {
                mos.pmos
            } else {
                dev.type_id()
            };
            let pins: Vec<_> = dev
                .pins()
                .iter()
                .map(|&n| c.net(b.net_ref(n).name()))
                .collect();
            for &n in dev.pins() {
                if b.net_ref(n).is_global() {
                    let id = c.net(b.net_ref(n).name());
                    c.mark_global(id);
                }
            }
            c.add_device(dev.name(), ty, &pins).unwrap();
        }
        assert!(!are_isomorphic(&a, &c));
    }

    #[test]
    fn disconnected_identical_cells_need_individuation() {
        // Three identical disconnected inverters are fully automorphic:
        // refinement alone cannot split them.
        let build = || {
            let mut nl = Netlist::new("trio");
            let mos = nl.add_mos_types();
            for i in 0..3 {
                let a = nl.net(format!("a{i}"));
                let y = nl.net(format!("y{i}"));
                let vdd = nl.net("vdd");
                let gnd = nl.net("gnd");
                nl.mark_global(vdd);
                nl.mark_global(gnd);
                nl.add_device(format!("p{i}"), mos.pmos, &[a, vdd, y])
                    .unwrap();
                nl.add_device(format!("n{i}"), mos.nmos, &[a, gnd, y])
                    .unwrap();
            }
            nl
        };
        let rep = compare_with_stats(&build(), &build(), &GeminiOptions::default());
        assert!(rep.outcome.is_isomorphic());
        assert!(rep.stats.guesses >= 2, "stats: {:?}", rep.stats);
    }

    #[test]
    fn global_name_mismatch_detected() {
        let a = nand2("", false).unwrap();
        let mut b = nand2("", false).unwrap();
        let vdd = b.find_net("vdd").unwrap();
        b.clear_global(vdd);
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn stats_count_passes() {
        let a = nand2("", false).unwrap();
        let b = nand2("", true).unwrap();
        let rep = compare_with_stats(&a, &b, &GeminiOptions::default());
        assert!(rep.stats.passes >= 1);
    }

    #[test]
    fn guess_budget_is_respected() {
        // Force heavy individuation with identical disconnected cells and
        // a tiny budget.
        let build = || {
            let mut nl = Netlist::new("many");
            let mos = nl.add_mos_types();
            for i in 0..8 {
                let a = nl.net(format!("a{i}"));
                let y = nl.net(format!("y{i}"));
                nl.add_device(format!("n{i}"), mos.nmos, &[a, y, y])
                    .unwrap();
            }
            nl
        };
        let rep = compare_with_stats(&build(), &build(), &GeminiOptions { max_guesses: 1 });
        // With a budget of one guess the 8-fold symmetry cannot be
        // resolved; the outcome must be an explicit give-up, not a hang.
        if let Some(m) = rep.outcome.mismatch() {
            assert!(m.reason.contains("gave up"));
        }
    }
}
