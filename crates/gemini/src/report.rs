//! Result and diagnostic types for netlist comparison.

use std::fmt;

use subgemini_netlist::{DeviceId, NetId, Vertex};

/// A complete isomorphism mapping from netlist `A` onto netlist `B`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mapping {
    /// `devices[i]` is the `B` device matched with `A` device `i`.
    pub devices: Vec<DeviceId>,
    /// `nets[i]` is the `B` net matched with `A` net `i`.
    pub nets: Vec<NetId>,
}

impl Mapping {
    /// The image in `B` of an `A` device.
    pub fn device(&self, a: DeviceId) -> DeviceId {
        self.devices[a.index()]
    }

    /// The image in `B` of an `A` net.
    pub fn net(&self, a: NetId) -> NetId {
        self.nets[a.index()]
    }
}

/// Why two netlists failed to match, with pointers at the suspects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MismatchReport {
    /// Human-readable summary of the first divergence found.
    pub reason: String,
    /// Vertices of `A` in unbalanced partitions (up to a small cap).
    pub suspects_a: Vec<Vertex>,
    /// Vertices of `B` in unbalanced partitions (up to a small cap).
    pub suspects_b: Vec<Vertex>,
}

impl fmt::Display for MismatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)?;
        if !self.suspects_a.is_empty() {
            write!(f, "; suspects in A: ")?;
            for (i, v) in self.suspects_a.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
        }
        if !self.suspects_b.is_empty() {
            write!(f, "; suspects in B: ")?;
            for (i, v) in self.suspects_b.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
        }
        Ok(())
    }
}

/// Effort counters for a comparison run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GeminiStats {
    /// Relabeling passes performed (across all backtracking branches).
    pub passes: usize,
    /// Individuation guesses made to break automorphic ties.
    pub guesses: usize,
    /// Guesses that had to be undone.
    pub backtracks: usize,
}

/// Outcome of [`compare`](crate::compare).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GeminiOutcome {
    /// The netlists are isomorphic; a verified mapping is attached.
    Isomorphic(Mapping),
    /// The netlists differ; diagnostics attached.
    Mismatch(MismatchReport),
}

impl GeminiOutcome {
    /// `true` if the comparison succeeded.
    pub fn is_isomorphic(&self) -> bool {
        matches!(self, GeminiOutcome::Isomorphic(_))
    }

    /// The mapping, if isomorphic.
    pub fn mapping(&self) -> Option<&Mapping> {
        match self {
            GeminiOutcome::Isomorphic(m) => Some(m),
            GeminiOutcome::Mismatch(_) => None,
        }
    }

    /// The mismatch report, if any.
    pub fn mismatch(&self) -> Option<&MismatchReport> {
        match self {
            GeminiOutcome::Isomorphic(_) => None,
            GeminiOutcome::Mismatch(r) => Some(r),
        }
    }
}

/// Outcome plus effort counters, returned by
/// [`compare_with_stats`](crate::compare_with_stats).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeminiReport {
    /// The comparison outcome.
    pub outcome: GeminiOutcome,
    /// Effort counters.
    pub stats: GeminiStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mismatch_display_lists_suspects() {
        let r = MismatchReport {
            reason: "device count differs".into(),
            suspects_a: vec![Vertex::Device(DeviceId::new(0))],
            suspects_b: vec![Vertex::Net(NetId::new(2))],
        };
        let s = r.to_string();
        assert!(s.contains("device count differs"));
        assert!(s.contains("d0") && s.contains("n2"));
    }

    #[test]
    fn outcome_accessors() {
        let m = GeminiOutcome::Isomorphic(Mapping {
            devices: vec![],
            nets: vec![],
        });
        assert!(m.is_isomorphic());
        assert!(m.mapping().is_some());
        assert!(m.mismatch().is_none());
    }
}
