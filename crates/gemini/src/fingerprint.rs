//! Canonical netlist fingerprints.
//!
//! A fingerprint is an isomorphism-invariant 64-bit hash: two netlists
//! that [`compare`](crate::compare) as isomorphic always produce equal
//! fingerprints, and different netlists collide only with hash
//! probability. Fingerprints make library deduplication and
//! cache-lookup cheap — compare only the (rare) fingerprint-equal pairs
//! with the full checker.
//!
//! The construction runs the same class-weighted label refinement as
//! the comparator for a fixed number of rounds (enough to mix any
//! structure whose diameter fits; beyond that, extra rounds cannot
//! merge distinct orbits) and hashes the sorted label multisets.

use subgemini_netlist::{hashing, CompiledCircuit, DeviceId, NetId, Netlist};

/// Refinement rounds used by [`fingerprint`]. Labels stabilize (as
/// partitions) within the graph diameter; 24 covers any realistic cell
/// and keeps the cost `O(24 · pins)`.
const ROUNDS: usize = 24;

/// Computes the canonical fingerprint of `netlist`.
///
/// Equal for isomorphic netlists (same device types, terminal-class
/// structure, and global-net names); unequal otherwise with
/// overwhelming probability. Instance and net *names* do not matter,
/// except for global (special) nets, which are identity-carrying just
/// like in [`compare`](crate::compare).
///
/// # Examples
///
/// ```
/// use subgemini_gemini::fingerprint;
/// use subgemini_netlist::Netlist;
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// let mut a = Netlist::new("x");
/// let mos = a.add_mos_types();
/// let (g, s, d) = (a.net("g"), a.net("s"), a.net("d"));
/// a.add_device("m", mos.nmos, &[g, s, d])?;
///
/// let mut b = Netlist::new("y");
/// let mos = b.add_mos_types();
/// let (p, q, r) = (b.net("p"), b.net("q"), b.net("r"));
/// b.add_device("zz", mos.nmos, &[p, r, q])?; // renamed + s/d swapped
/// assert_eq!(fingerprint(&a), fingerprint(&b));
/// # Ok(())
/// # }
/// ```
pub fn fingerprint(netlist: &Netlist) -> u64 {
    let g = CompiledCircuit::compile(netlist);
    let nd = g.device_count();
    let nn = g.net_count();
    let mut dev: Vec<u64> = (0..nd)
        .map(|i| g.initial_device_label(DeviceId::new(i as u32)))
        .collect();
    let mut net: Vec<u64> = (0..nn)
        .map(|i| g.initial_net_label(NetId::new(i as u32)))
        .collect();
    for _ in 0..ROUNDS {
        let new_net: Vec<u64> = (0..nn)
            .map(|i| {
                let n = NetId::new(i as u32);
                if g.is_global(n) {
                    return net[i];
                }
                let c = g.net_contribs(n, |d| Some(dev[d.index()]));
                hashing::relabel(net[i], c.sum)
            })
            .collect();
        let new_dev: Vec<u64> = (0..nd)
            .map(|i| {
                let d = DeviceId::new(i as u32);
                let c = g.device_contribs(d, |n| Some(new_net[n.index()]));
                hashing::relabel(dev[i], c.sum)
            })
            .collect();
        net = new_net;
        dev = new_dev;
    }
    dev.sort_unstable();
    net.sort_unstable();
    let mut acc = hashing::mix(0x6669_6e67_6572 ^ (nd as u64) ^ ((nn as u64) << 32));
    for l in dev.iter().chain(net.iter()) {
        acc = hashing::mix(acc ^ *l);
    }
    acc
}

/// Groups netlists into isomorphism classes: fingerprint buckets first,
/// then full [`compare`](crate::compare) within each bucket (so hash
/// collisions cannot produce wrong groups). Returns groups of indices
/// into `netlists`, each group's members mutually isomorphic, ordered
/// by first member.
///
/// # Examples
///
/// ```
/// use subgemini_gemini::dedup_classes;
/// use subgemini_netlist::Netlist;
///
/// let a = Netlist::new("a");
/// let b = Netlist::new("b");
/// let groups = dedup_classes(&[&a, &b]);
/// assert_eq!(groups, vec![vec![0, 1]]); // two empty netlists
/// ```
pub fn dedup_classes(netlists: &[&Netlist]) -> Vec<Vec<usize>> {
    let prints: Vec<u64> = netlists.iter().map(|n| fingerprint(n)).collect();
    let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
    for (i, &p) in prints.iter().enumerate() {
        let mut placed = false;
        for (gp, members) in groups.iter_mut() {
            if *gp == p && crate::are_isomorphic(netlists[members[0]], netlists[i]) {
                members.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push((p, vec![i]));
        }
    }
    groups.into_iter().map(|(_, m)| m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand2(swap_inputs: bool) -> Netlist {
        let mut nl = Netlist::new("nand2");
        let mos = nl.add_mos_types();
        let (a, b) = if swap_inputs {
            (nl.net("b"), nl.net("a"))
        } else {
            (nl.net("a"), nl.net("b"))
        };
        let (y, mid) = (nl.net("y"), nl.net("mid"));
        let (vdd, gnd) = (nl.net("vdd"), nl.net("gnd"));
        nl.mark_global(vdd);
        nl.mark_global(gnd);
        nl.add_device("p1", mos.pmos, &[a, vdd, y]).unwrap();
        nl.add_device("p2", mos.pmos, &[b, vdd, y]).unwrap();
        nl.add_device("n1", mos.nmos, &[a, y, mid]).unwrap();
        nl.add_device("n2", mos.nmos, &[b, mid, gnd]).unwrap();
        nl
    }

    fn nor2() -> Netlist {
        let mut nl = Netlist::new("nor2");
        let mos = nl.add_mos_types();
        let (a, b, y, mid) = (nl.net("a"), nl.net("b"), nl.net("y"), nl.net("mid"));
        let (vdd, gnd) = (nl.net("vdd"), nl.net("gnd"));
        nl.mark_global(vdd);
        nl.mark_global(gnd);
        nl.add_device("p1", mos.pmos, &[a, vdd, mid]).unwrap();
        nl.add_device("p2", mos.pmos, &[b, mid, y]).unwrap();
        nl.add_device("n1", mos.nmos, &[a, gnd, y]).unwrap();
        nl.add_device("n2", mos.nmos, &[b, gnd, y]).unwrap();
        nl
    }

    #[test]
    fn isomorphic_variants_share_a_fingerprint() {
        assert_eq!(fingerprint(&nand2(false)), fingerprint(&nand2(true)));
    }

    #[test]
    fn distinct_cells_differ() {
        assert_ne!(fingerprint(&nand2(false)), fingerprint(&nor2()));
    }

    #[test]
    fn single_edit_changes_fingerprint() {
        let reference = nand2(false);
        let mut edited = Netlist::new("bad");
        let mos = edited.add_mos_types();
        let (a, b, y, mid) = (
            edited.net("a"),
            edited.net("b"),
            edited.net("y"),
            edited.net("mid"),
        );
        let (vdd, gnd) = (edited.net("vdd"), edited.net("gnd"));
        edited.mark_global(vdd);
        edited.mark_global(gnd);
        edited.add_device("p1", mos.pmos, &[a, vdd, y]).unwrap();
        edited.add_device("p2", mos.pmos, &[b, vdd, y]).unwrap();
        edited.add_device("n1", mos.nmos, &[a, y, mid]).unwrap();
        edited.add_device("n2", mos.nmos, &[b, mid, y]).unwrap(); // y, not gnd
        assert_ne!(fingerprint(&reference), fingerprint(&edited));
    }

    #[test]
    fn global_names_carry_identity() {
        let mut a = nand2(false);
        let vdd = a.find_net("vdd").unwrap();
        a.clear_global(vdd);
        assert_ne!(fingerprint(&a), fingerprint(&nand2(false)));
    }

    #[test]
    fn dedup_groups_isomorphs_together() {
        let a = nand2(false);
        let b = nand2(true);
        let c = nor2();
        let groups = dedup_classes(&[&a, &c, &b]);
        assert_eq!(groups, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn empty_netlist_fingerprint_is_stable() {
        let a = Netlist::new("a");
        let b = Netlist::new("b");
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}
