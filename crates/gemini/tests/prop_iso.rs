//! Property tests: Gemini recognizes random permutations as isomorphic
//! and detects random single-edit tampering. Cases come from a seeded
//! internal PRNG so runs are reproducible.

use subgemini_gemini::{are_isomorphic, compare};
use subgemini_netlist::rng::Rng64;
use subgemini_netlist::{DeviceType, NetId, Netlist};

fn random_netlist(n_nets: usize, devices: &[(u8, [usize; 3])]) -> Netlist {
    let mut nl = Netlist::new("rand");
    let mos = nl.add_mos_types();
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let nets: Vec<NetId> = (0..n_nets.max(2))
        .map(|i| nl.net(format!("w{i}")))
        .collect();
    for (i, (kind, pins)) in devices.iter().enumerate() {
        let p = |k: usize| nets[pins[k] % nets.len()];
        match kind % 3 {
            0 => {
                nl.add_device(format!("n{i}"), mos.nmos, &[p(0), p(1), p(2)])
                    .unwrap();
            }
            1 => {
                nl.add_device(format!("p{i}"), mos.pmos, &[p(0), p(1), p(2)])
                    .unwrap();
            }
            _ => {
                nl.add_device(format!("r{i}"), res, &[p(0), p(1)]).unwrap();
            }
        }
    }
    nl.compact()
}

fn draw_devices(rng: &mut Rng64, lo: usize, hi: usize, kinds: u8) -> Vec<(u8, [usize; 3])> {
    let n = rng.range(lo, hi);
    (0..n)
        .map(|_| {
            (
                rng.range(0, kinds as usize) as u8,
                [
                    rng.next_u64() as usize,
                    rng.next_u64() as usize,
                    rng.next_u64() as usize,
                ],
            )
        })
        .collect()
}

/// Rebuilds with devices inserted in a rotated order and all names
/// scrambled — a random relabeling of the same graph.
fn permuted(nl: &Netlist, rotate: usize) -> Netlist {
    let mut out = Netlist::new("perm");
    for ty in nl.device_types() {
        out.add_type(ty.clone()).unwrap();
    }
    let n = nl.device_count();
    for k in 0..n {
        let d = subgemini_netlist::DeviceId::new(((k + rotate) % n) as u32);
        let dev = nl.device(d);
        let pins: Vec<NetId> = dev
            .pins()
            .iter()
            .map(|&nn| out.net(format!("q{}", nl.net_ref(nn).name())))
            .collect();
        out.add_device(format!("qq{}", dev.name()), dev.type_id(), &pins)
            .unwrap();
    }
    out
}

#[test]
fn permutations_are_isomorphic() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0x15_0000 + case);
        let n_nets = rng.range(2, 8);
        let devices = draw_devices(&mut rng, 1, 14, 3);
        let rotate = rng.range(0, 13);
        let a = random_netlist(n_nets, &devices);
        let b = permuted(&a, rotate);
        assert!(are_isomorphic(&a, &b), "case {case}");
    }
}

#[test]
fn single_device_removal_is_detected() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0x16_0000 + case);
        let n_nets = rng.range(2, 8);
        let devices = draw_devices(&mut rng, 2, 12, 3);
        let victim = rng.next_u64() as usize;
        let a = random_netlist(n_nets, &devices);
        // Rebuild without one device.
        let v = victim % a.device_count();
        let mut b = Netlist::new("cut");
        for ty in a.device_types() {
            b.add_type(ty.clone()).unwrap();
        }
        for d in a.device_ids() {
            if d.index() == v {
                continue;
            }
            let dev = a.device(d);
            let pins: Vec<NetId> = dev
                .pins()
                .iter()
                .map(|&n| b.net(a.net_ref(n).name()))
                .collect();
            b.add_device(dev.name().to_string(), dev.type_id(), &pins)
                .unwrap();
        }
        let b = b.compact();
        assert!(!are_isomorphic(&a, &b), "case {case}");
    }
}

#[test]
fn rewiring_one_pin_is_detected() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0x17_0000 + case);
        let n_nets = rng.range(3, 8);
        let devices = draw_devices(&mut rng, 2, 12, 2);
        let victim = rng.next_u64() as usize;
        let a = random_netlist(n_nets, &devices);
        let v = victim % a.device_count();
        let mut b = Netlist::new("rewired");
        for ty in a.device_types() {
            b.add_type(ty.clone()).unwrap();
        }
        let mut changed = false;
        for d in a.device_ids() {
            let dev = a.device(d);
            let mut pins: Vec<NetId> = dev
                .pins()
                .iter()
                .map(|&n| b.net(a.net_ref(n).name()))
                .collect();
            if d.index() == v {
                // Move the gate pin (index 0, never interchangeable with
                // s/d) to a different net.
                let old = pins[0];
                let replacement = (0..a.net_count())
                    .map(|i| b.net(a.net_ref(subgemini_netlist::NetId::new(i as u32)).name()))
                    .find(|&c| c != old);
                if let Some(c) = replacement {
                    pins[0] = c;
                    changed = true;
                }
            }
            b.add_device(dev.name().to_string(), dev.type_id(), &pins)
                .unwrap();
        }
        if !changed {
            continue; // nothing to rewire in this case
        }
        let a = a.compact();
        let b = b.compact();
        // Moving a gate changes the multigraph unless the change is an
        // automorphism-equivalent rewiring, which random names make
        // vanishingly unlikely but not impossible — so assert via exact
        // structural signature: if signatures differ, Gemini must say no.
        let sig = |nl: &Netlist| {
            let mut v: Vec<(String, Vec<(u64, String)>)> = nl
                .device_ids()
                .map(|d| {
                    let ty = nl.device_type_of(d);
                    let mut pins: Vec<(u64, String)> = nl
                        .device(d)
                        .pins()
                        .iter()
                        .enumerate()
                        .map(|(i, &n)| (ty.class_multiplier(i), nl.net_ref(n).name().to_string()))
                        .collect();
                    pins.sort();
                    (ty.name().to_string(), pins)
                })
                .collect();
            v.sort();
            v
        };
        if sig(&a) != sig(&b) && a.net_count() == b.net_count() {
            // Graphs could still be isomorphic under renaming; Gemini
            // decides. We only require *consistency*: a "yes" must come
            // with a verified mapping, which compare() guarantees
            // internally. Check it does not crash and, when it says no,
            // provides a reason.
            if let Some(m) = compare(&a, &b).mismatch() {
                assert!(!m.reason.is_empty(), "case {case}");
            }
        }
    }
}
