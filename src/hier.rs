//! Hierarchical netlist comparison (paper §I).
//!
//! "Matching circuits hierarchically simplifies the problem of
//! identifying the precise location of errors and also allows one to
//! efficiently check incremental changes": cells are compared
//! definition-by-definition and the top level is compared unflattened,
//! so an edit inside one cell flags exactly that cell.

use subgemini_gemini::{compare, GeminiOutcome};
use subgemini_spice::{ElaborateOptions, SpiceDoc, SpiceError};

/// Outcome for one named cell (or the top level).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellOutcome {
    /// Present in both decks and isomorphic.
    Matches,
    /// Present in both decks but different; the report explains.
    Differs(String),
    /// Defined only in the first deck.
    OnlyInFirst,
    /// Defined only in the second deck.
    OnlyInSecond,
}

/// Full hierarchical comparison report.
#[derive(Clone, Debug, Default)]
pub struct HierReport {
    /// Per-cell outcomes, sorted by cell name.
    pub cells: Vec<(String, CellOutcome)>,
    /// The unflattened top-level outcome.
    pub top: Option<CellOutcome>,
}

impl HierReport {
    /// `true` when every cell and the top level match.
    pub fn is_clean(&self) -> bool {
        self.cells.iter().all(|(_, o)| *o == CellOutcome::Matches)
            && self.top.as_ref().is_none_or(|o| *o == CellOutcome::Matches)
    }

    /// Names of cells that differ or exist on one side only.
    pub fn dirty_cells(&self) -> Vec<&str> {
        self.cells
            .iter()
            .filter(|(_, o)| *o != CellOutcome::Matches)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// Compares two parsed SPICE decks hierarchically.
///
/// # Errors
///
/// Propagates elaboration failures (unknown/recursive subcircuits).
///
/// # Examples
///
/// ```
/// use subgemini_suite::hier::compare_docs;
///
/// let a = subgemini_spice::parse(
///     ".subckt inv a y\nmp y a vdd vdd pmos\nmn y a gnd gnd nmos\n.ends\nXu i o inv\n",
/// )?;
/// let b = subgemini_spice::parse(
///     ".subckt inv a y\nmp y a vdd vdd pmos\nmn y a gnd gnd nmos\n.ends\nXw p q inv\n",
/// )?;
/// let report = compare_docs(&a, &b)?;
/// assert!(report.is_clean());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compare_docs(a: &SpiceDoc, b: &SpiceDoc) -> Result<HierReport, SpiceError> {
    let flat = ElaborateOptions::default();
    let mut names: Vec<String> = a.subckts.iter().map(|s| s.name.clone()).collect();
    for s in &b.subckts {
        if !names.contains(&s.name) {
            names.push(s.name.clone());
        }
    }
    names.sort();
    let mut report = HierReport::default();
    for name in names {
        let outcome = match (a.subckt(&name), b.subckt(&name)) {
            (Some(_), Some(_)) => {
                let ca = a.elaborate_cell(&name, &flat)?;
                let cb = b.elaborate_cell(&name, &flat)?;
                match compare(&ca, &cb) {
                    GeminiOutcome::Isomorphic(_) => CellOutcome::Matches,
                    GeminiOutcome::Mismatch(m) => CellOutcome::Differs(m.to_string()),
                }
            }
            (Some(_), None) => CellOutcome::OnlyInFirst,
            (None, Some(_)) => CellOutcome::OnlyInSecond,
            (None, None) => unreachable!("name collected from one deck"),
        };
        report.cells.push((name, outcome));
    }
    let hier = ElaborateOptions::hierarchical();
    let ta = a.elaborate_top("top", &hier)?;
    let tb = b.elaborate_top("top", &hier)?;
    report.top = Some(match compare(&ta, &tb) {
        GeminiOutcome::Isomorphic(_) => CellOutcome::Matches,
        GeminiOutcome::Mismatch(m) => CellOutcome::Differs(m.to_string()),
    });
    Ok(report)
}

/// Compares two structural Verilog sources hierarchically:
/// module-by-module, plus the unflattened top.
///
/// # Errors
///
/// Propagates elaboration failures.
///
/// # Examples
///
/// ```
/// use subgemini_suite::hier::compare_verilog;
///
/// let a = subgemini_verilog::parse(
///     "module inv(input a, output y);\nnot g(y, a);\nendmodule\n\
///      module top(input x, output z);\ninv u(x, z);\nendmodule\n",
/// )?;
/// let b = a.clone();
/// assert!(compare_verilog(&a, &b)?.is_clean());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compare_verilog(
    a: &subgemini_verilog::Source,
    b: &subgemini_verilog::Source,
) -> Result<HierReport, subgemini_verilog::VerilogError> {
    use subgemini_verilog::VerilogOptions;
    let flat = VerilogOptions::default();
    let mut names: Vec<String> = a.modules.iter().map(|m| m.name.clone()).collect();
    for m in &b.modules {
        if !names.contains(&m.name) {
            names.push(m.name.clone());
        }
    }
    names.sort();
    let mut report = HierReport::default();
    for name in names {
        let outcome = match (a.module(&name), b.module(&name)) {
            (Some(_), Some(_)) => {
                let ca = a.elaborate(Some(&name), &flat)?;
                let cb = b.elaborate(Some(&name), &flat)?;
                match compare(&ca, &cb) {
                    GeminiOutcome::Isomorphic(_) => CellOutcome::Matches,
                    GeminiOutcome::Mismatch(m) => CellOutcome::Differs(m.to_string()),
                }
            }
            (Some(_), None) => CellOutcome::OnlyInFirst,
            (None, Some(_)) => CellOutcome::OnlyInSecond,
            (None, None) => unreachable!("name collected from one source"),
        };
        report.cells.push((name, outcome));
    }
    let hier = VerilogOptions::hierarchical();
    let ta = a.elaborate(None, &hier)?;
    let tb = b.elaborate(None, &hier)?;
    report.top = Some(match compare(&ta, &tb) {
        GeminiOutcome::Isomorphic(_) => CellOutcome::Matches,
        GeminiOutcome::Mismatch(m) => CellOutcome::Differs(m.to_string()),
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECK: &str = "\
.global vdd gnd
.subckt inv a y
mp y a vdd vdd pmos
mn y a gnd gnd nmos
.ends
.subckt nand2 a b y
mp1 y a vdd vdd pmos
mp2 y b vdd vdd pmos
mn1 mid a y gnd nmos
mn2 gnd b mid gnd nmos
.ends
Xu1 in w inv
Xg1 w en out nand2
";

    #[test]
    fn identical_decks_are_clean() {
        let a = subgemini_spice::parse(DECK).unwrap();
        let b = subgemini_spice::parse(DECK).unwrap();
        let r = compare_docs(&a, &b).unwrap();
        assert!(r.is_clean(), "{r:?}");
        assert!(r.dirty_cells().is_empty());
    }

    #[test]
    fn edit_localizes_to_one_cell() {
        let a = subgemini_spice::parse(DECK).unwrap();
        let edited = DECK.replace("mn2 gnd b mid gnd nmos", "mn2 gnd b y gnd nmos");
        let b = subgemini_spice::parse(&edited).unwrap();
        let r = compare_docs(&a, &b).unwrap();
        assert!(!r.is_clean());
        assert_eq!(r.dirty_cells(), vec!["nand2"]);
        assert_eq!(r.top, Some(CellOutcome::Matches));
    }

    #[test]
    fn verilog_compare_localizes_edits() {
        let a = subgemini_verilog::parse(
            "module inv(input a, output y);\nnot g(y, a);\nendmodule\n\
             module buf2(input a, output y);\nwire w;\ninv u1(a, w);\ninv u2(w, y);\nendmodule\n\
             module top(input x, output z);\nbuf2 u(x, z);\nendmodule\n",
        )
        .unwrap();
        let edited_text = "module inv(input a, output y);\nbuf g(y, a);\nendmodule\n\
             module buf2(input a, output y);\nwire w;\ninv u1(a, w);\ninv u2(w, y);\nendmodule\n\
             module top(input x, output z);\nbuf2 u(x, z);\nendmodule\n";
        let b = subgemini_verilog::parse(edited_text).unwrap();
        let r = compare_verilog(&a, &b).unwrap();
        // inv differs directly; buf2 differs transitively (flattened
        // cell comparison sees the buf-for-not swap); top is compared
        // unflattened and matches.
        assert!(r.dirty_cells().contains(&"inv"));
        assert_eq!(r.top, Some(CellOutcome::Matches));
    }

    #[test]
    fn missing_cell_reported() {
        let a = subgemini_spice::parse(DECK).unwrap();
        let shorter: String = DECK
            .lines()
            .filter(|l| !l.contains("nand2") || l.starts_with('X'))
            .map(|l| format!("{l}\n"))
            .collect::<String>()
            .replace("Xg1 w en out nand2\n", "");
        // Remove the nand2 definition lines precisely.
        let mut b_text = String::new();
        let mut skipping = false;
        for line in DECK.lines() {
            if line.starts_with(".subckt nand2") {
                skipping = true;
            }
            if !skipping && !line.starts_with("Xg1") {
                b_text.push_str(line);
                b_text.push('\n');
            }
            if skipping && line.starts_with(".ends") {
                skipping = false;
            }
        }
        let _ = shorter;
        let b = subgemini_spice::parse(&b_text).unwrap();
        let r = compare_docs(&a, &b).unwrap();
        assert!(r
            .cells
            .iter()
            .any(|(n, o)| n == "nand2" && *o == CellOutcome::OnlyInFirst));
    }

    #[test]
    fn top_level_rewire_detected() {
        let a = subgemini_spice::parse(DECK).unwrap();
        let edited = DECK.replace("Xg1 w en out nand2", "Xg1 w w out nand2");
        let b = subgemini_spice::parse(&edited).unwrap();
        let r = compare_docs(&a, &b).unwrap();
        assert_eq!(r.dirty_cells(), Vec::<&str>::new());
        assert!(matches!(r.top, Some(CellOutcome::Differs(_))));
    }
}
