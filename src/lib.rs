//! Umbrella crate for the SubGemini reproduction workspace.
//!
//! Re-exports the public API of every member crate so examples and
//! integration tests can use a single dependency. Library users should
//! depend on the individual crates ([`subgemini`], [`subgemini_netlist`],
//! …) directly.
//!
//! # Quickstart
//!
//! ```
//! use subgemini_suite::subgemini::Matcher;
//! use subgemini_suite::workloads::{cells, gen};
//!
//! let pattern = cells::full_adder();
//! let main = gen::ripple_adder(4);
//! let outcome = Matcher::new(&pattern, &main.netlist).find_all();
//! assert_eq!(outcome.count(), 4);
//! ```

pub mod hier;

pub use subgemini;
pub use subgemini_baseline as baseline;
pub use subgemini_gemini as gemini;
pub use subgemini_netlist as netlist;
pub use subgemini_spice as spice;
pub use subgemini_verilog as verilog;
pub use subgemini_workloads as workloads;
