//! Ground-truth validation (experiment E4's correctness half): for
//! every generator × cell combination with an exact expected count, the
//! matcher must find exactly that many instances.

use subgemini::Matcher;
use subgemini_workloads::{cells, gen, Generated};

fn check(g: &Generated, cell_name: &str) {
    let cell = cells::by_name(cell_name).expect("library cell");
    let outcome = Matcher::new(&cell, &g.netlist).find_all();
    assert_eq!(
        outcome.count(),
        g.structural_count(cell_name),
        "{} in {}",
        cell_name,
        g.netlist.name()
    );
    // Every instance independently verifies.
    for m in &outcome.instances {
        subgemini::verify_instance(&cell, &g.netlist, m, true)
            .unwrap_or_else(|e| panic!("{cell_name} instance invalid: {e}"));
    }
}

#[test]
fn adder_ground_truth() {
    let g = gen::ripple_adder(10);
    check(&g, "full_adder");
    check(&g, "inv"); // 2 per FA
    check(&g, "nand2"); // none
    check(&g, "dff"); // none
}

#[test]
fn shift_register_ground_truth() {
    let g = gen::shift_register(6);
    check(&g, "dff");
    check(&g, "dlatch"); // 2 per dff
    check(&g, "inv"); // 5 per dff
    check(&g, "buf"); // 2 per dff
    check(&g, "sram6t"); // none
}

#[test]
fn multiplier_ground_truth() {
    let g = gen::array_multiplier(3);
    check(&g, "full_adder");
    check(&g, "nand2");
}

#[test]
fn sram_ground_truth() {
    let g = gen::sram_array(5, 5);
    check(&g, "sram6t");
    check(&g, "inv"); // 2 per bit cell
    check(&g, "dff"); // none
}

#[test]
fn decoder_ground_truth() {
    let g = gen::decoder(3);
    check(&g, "nand3");
    check(&g, "inv");
    check(&g, "nand2"); // none: 3-input rows only
}

#[test]
fn ripple_counter_ground_truth() {
    let g = gen::ripple_counter(4);
    check(&g, "dff");
    check(&g, "xor2");
    check(&g, "dlatch"); // 2 per dff
    check(&g, "mux2"); // 1 per xor2
}

#[test]
fn soup_ground_truth_across_seeds() {
    for seed in [1u64, 7, 99, 12345] {
        let g = gen::random_soup(seed, 35);
        for cell in [
            "nand2",
            "nor2",
            "xor2",
            "mux2",
            "dff",
            "full_adder",
            "sram6t",
        ] {
            check(&g, cell);
        }
    }
}

#[test]
fn inverter_chain_ground_truth() {
    let g = gen::inverter_chain(20);
    check(&g, "inv");
    // A chain of inverters contains buf instances at every interior pair.
    let buf = cells::buf();
    let outcome = Matcher::new(&buf, &g.netlist).find_all();
    assert_eq!(outcome.count(), 19);
}
