//! Tests over the hand-written SPICE corpus in `testdata/` — realistic
//! decks exercising the full parse → elaborate → match pipeline.

use subgemini::Matcher;
use subgemini_spice::{parse, ElaborateOptions, SpiceError};

fn load(name: &str) -> String {
    let path = format!("{}/testdata/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn pipeline_deck_parses_and_matches() {
    let doc = parse(&load("pipeline.sp")).unwrap();
    assert_eq!(doc.subckts.len(), 4);
    let chip = doc
        .elaborate_top("pipeline", &ElaborateOptions::default())
        .unwrap();
    chip.validate().unwrap();
    // 3 nand2 (12) + aoi21 (6) + 3 inv (6) + 2 dlatch (16) = 40.
    assert_eq!(chip.device_count(), 40);

    let nand = doc
        .elaborate_cell("nand2", &ElaborateOptions::default())
        .unwrap();
    let found = Matcher::new(&nand, &chip).find_all();
    assert_eq!(found.count(), 3);

    let latch = doc
        .elaborate_cell("dlatch", &ElaborateOptions::default())
        .unwrap();
    let found = Matcher::new(&latch, &chip).find_all();
    assert_eq!(found.count(), 2);

    let aoi = doc
        .elaborate_cell("aoi21", &ElaborateOptions::default())
        .unwrap();
    let found = Matcher::new(&aoi, &chip).find_all();
    assert_eq!(found.count(), 1);

    // The deck's own inv cell: 3 planted + 2 inside each dlatch.
    let inv = doc
        .elaborate_cell("inv", &ElaborateOptions::default())
        .unwrap();
    let found = Matcher::new(&inv, &chip).find_all();
    assert_eq!(found.count(), 3 + 4);
}

#[test]
fn pipeline_hierarchical_view() {
    let doc = parse(&load("pipeline.sp")).unwrap();
    let hier = doc
        .elaborate_top("pipeline", &ElaborateOptions::hierarchical())
        .unwrap();
    // 9 X instances as composite devices.
    assert_eq!(hier.device_count(), 9);
    let stats = subgemini_netlist::NetlistStats::of(&hier);
    assert_eq!(stats.devices_by_type["nand2"], 3);
    assert_eq!(stats.devices_by_type["dlatch"], 2);
}

#[test]
fn bias_network_matches_analog_patterns() {
    let doc = parse(&load("bias_network.sp")).unwrap();
    let chip = doc
        .elaborate_top("bias", &ElaborateOptions::default())
        .unwrap();
    chip.validate().unwrap();

    // The deck's own nmirror subckt: 2 instantiated + 1 formed by the
    // flat amplifier? The amp's M5 is a lone tail (no diode partner), so
    // exactly the 2 planted mirrors plus the reference-sharing overlap:
    // Xm0 and Xm1 share the diode M1 via nref... each X stamps its own
    // diode, so 2 planted; but (Xm0.m1, Xm1.m2) also mirror-match etc.
    // Use the workloads pattern (identical topology) and just pin the
    // measured value down.
    let mirror = doc
        .elaborate_cell("nmirror", &ElaborateOptions::default())
        .unwrap();
    let found = Matcher::new(&mirror, &chip).find_all();
    // Xm0 and Xm1 both stamp a diode on nref, and either follower pairs
    // with either diode (4 structural pairs). SubGemini reports one
    // instance per candidate key image (here: per diode, since only a
    // diode can be the key device's image), so 2 instances are
    // reported — the paper's enumeration semantics.
    assert_eq!(found.count(), 2);
    // The exhaustive baseline sees all 4 overlapping pairs.
    let dfs =
        subgemini_baseline::find_all(&mirror, &chip, &subgemini_baseline::DfsOptions::default());
    assert_eq!(dfs.instances.len(), 4);

    // The five-transistor OTA was written flat; find it with the
    // workloads pattern.
    let ota = subgemini_workloads::analog::ota5t();
    let found = Matcher::new(&ota, &chip).find_all();
    assert_eq!(found.count(), 1);

    let pmirror = subgemini_workloads::analog::pmos_mirror();
    let found = Matcher::new(&pmirror, &chip).find_all();
    // The amp's M3/M4 mirror + the planted pmirror cell: the pmirror
    // cell's own (diode, follower) is one instance; the amp load is
    // another.
    assert_eq!(found.count(), 2);
}

#[test]
fn broken_deck_reports_line() {
    let err = parse(&load("broken.sp")).unwrap_err();
    match err {
        SpiceError::Parse { line, detail } => {
            assert_eq!(line, 3);
            assert!(detail.contains("Mn1") || detail.contains("mn1"), "{detail}");
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn verilog_alu_corpus_matches_slices() {
    use subgemini_verilog::{parse as vparse, VerilogOptions};
    let path = format!("{}/testdata/alu_bitslice.v", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap();
    let src = vparse(&text).unwrap();
    // Flatten the 2-bit ALU and find both slices with the slice module
    // itself as the pattern.
    let chip = src
        .elaborate(Some("alu2"), &VerilogOptions::default())
        .unwrap();
    assert_eq!(chip.device_count(), 2 * 9);
    let slice = src
        .elaborate(Some("alu_slice"), &VerilogOptions::default())
        .unwrap();
    let found = subgemini::Matcher::new(&slice, &chip).find_all();
    assert_eq!(found.count(), 2);
    // Gate-level sub-pattern: the 3-NAND carry/mux shape appears twice
    // per slice (carry tree and mux tree) = 4 total.
    let tri = vparse(
        "module tri_nand(input a, b, c, d, output y);\n\
           wire w1, w2;\n\
           nand n1(w1, a, b);\n\
           nand n2(w2, c, d);\n\
           nand n3(y, w1, w2);\n\
         endmodule\n",
    )
    .unwrap()
    .elaborate(None, &VerilogOptions::default())
    .unwrap();
    let found = subgemini::Matcher::new(&tri, &chip).find_all();
    assert_eq!(found.count(), 4);
}
