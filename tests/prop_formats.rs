//! Property tests across the interchange formats: random netlists
//! round-trip through the SPICE and Verilog writers isomorphically.
//! Cases come from a seeded internal PRNG so every run is reproducible.

use subgemini_gemini::compare;
use subgemini_netlist::rng::Rng64;
use subgemini_netlist::{DeviceType, NetId, Netlist};

/// Random netlist over SPICE-writable primitive types.
fn random_netlist(n_nets: usize, devices: &[(u8, [usize; 3])]) -> Netlist {
    let mut nl = Netlist::new("rt");
    let mos = nl.add_mos_types();
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let cap = nl.add_type(DeviceType::two_terminal("cap")).unwrap();
    let nets: Vec<NetId> = (0..n_nets.max(2))
        .map(|i| nl.net(format!("w{i}")))
        .collect();
    let vdd = nl.net("vdd");
    nl.mark_global(vdd);
    for (i, (kind, pins)) in devices.iter().enumerate() {
        let p = |k: usize| nets[pins[k] % nets.len()];
        match kind % 4 {
            0 => {
                nl.add_device(format!("mn{i}"), mos.nmos, &[p(0), p(1), vdd])
                    .unwrap();
            }
            1 => {
                nl.add_device(format!("mp{i}"), mos.pmos, &[p(0), vdd, p(2)])
                    .unwrap();
            }
            2 => {
                nl.add_device(format!("r{i}"), res, &[p(0), p(1)]).unwrap();
            }
            _ => {
                nl.add_device(format!("c{i}"), cap, &[p(0), p(1)]).unwrap();
            }
        }
    }
    nl.compact()
}

fn draw_devices(rng: &mut Rng64, lo: usize, hi: usize) -> Vec<(u8, [usize; 3])> {
    let n = rng.range(lo, hi);
    (0..n)
        .map(|_| {
            (
                rng.range(0, 4) as u8,
                [
                    rng.next_u64() as usize,
                    rng.next_u64() as usize,
                    rng.next_u64() as usize,
                ],
            )
        })
        .collect()
}

#[test]
fn spice_roundtrip_is_isomorphic() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0xf0_1000 + case);
        let n_nets = rng.range(2, 8);
        let devices = draw_devices(&mut rng, 1, 12);
        let nl = random_netlist(n_nets, &devices);
        let text = subgemini_spice::write_netlist(&nl);
        let doc =
            subgemini_spice::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        let back = doc
            .elaborate_top(nl.name(), &Default::default())
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        let outcome = compare(&nl, &back);
        assert!(
            outcome.is_isomorphic(),
            "case {case}: diverged: {:?}\n{text}",
            outcome.mismatch()
        );
    }
}

/// Random gate-level netlists round-trip through the Verilog writer
/// (primitive gates only).
#[test]
fn verilog_roundtrip_is_isomorphic() {
    use subgemini_verilog::{parse, primitive_type, write_module, VerilogOptions};
    for case in 0..48u64 {
        let mut rng = Rng64::new(0xf0_2000 + case);
        let n_nets = rng.range(2, 8);
        let gates = draw_devices(&mut rng, 1, 10);
        let mut nl = Netlist::new("gl");
        let not_ty = nl.add_type(primitive_type("not", 1)).unwrap();
        let nand_ty = nl.add_type(primitive_type("nand", 2)).unwrap();
        let xor_ty = nl.add_type(primitive_type("xor", 2)).unwrap();
        let nets: Vec<NetId> = (0..n_nets.max(2))
            .map(|i| nl.net(format!("w{i}")))
            .collect();
        for (i, (kind, pins)) in gates.iter().enumerate() {
            let p = |k: usize| nets[pins[k] % nets.len()];
            match kind % 3 {
                0 => {
                    nl.add_device(format!("g{i}"), not_ty, &[p(0), p(1)])
                        .unwrap();
                }
                1 => {
                    nl.add_device(format!("g{i}"), nand_ty, &[p(0), p(1), p(2)])
                        .unwrap();
                }
                _ => {
                    nl.add_device(format!("g{i}"), xor_ty, &[p(0), p(1), p(2)])
                        .unwrap();
                }
            }
        }
        let nl = nl.compact();
        let text = write_module(&nl);
        let src = parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        let back = src
            .elaborate(None, &VerilogOptions::default())
            .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        let outcome = compare(&nl, &back);
        assert!(
            outcome.is_isomorphic(),
            "case {case}: diverged: {:?}\n{text}",
            outcome.mismatch()
        );
    }
}

/// Matching commutes with SPICE round-trips on random circuits.
#[test]
fn matching_commutes_with_spice_roundtrip() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0xf0_3000 + case);
        let n_nets = rng.range(3, 8);
        let devices = draw_devices(&mut rng, 2, 10);
        let nl = random_netlist(n_nets, &devices);
        let text = subgemini_spice::write_netlist(&nl);
        let back = subgemini_spice::parse(&text)
            .unwrap()
            .elaborate_top(nl.name(), &Default::default())
            .unwrap();
        // Pattern: a single nmos with all-external nets.
        let mut pat = Netlist::new("one");
        let mos = pat.add_mos_types();
        let (g, s, d) = (pat.net("g"), pat.net("s"), pat.net("d"));
        pat.mark_port(g);
        pat.mark_port(s);
        pat.mark_port(d);
        pat.add_device("m", mos.nmos, &[g, s, d]).unwrap();
        let a = subgemini::Matcher::new(&pat, &nl).find_all();
        let b = subgemini::Matcher::new(&pat, &back).find_all();
        assert_eq!(a.count(), b.count(), "case {case}");
    }
}
