//! SPICE writer/parser round-trips validated with Gemini isomorphism.

use subgemini_gemini::compare;
use subgemini_spice::{parse, write_netlist, ElaborateOptions};
use subgemini_workloads::{cells, gen};

fn roundtrip_flat(nl: &subgemini_netlist::Netlist) -> subgemini_netlist::Netlist {
    let text = write_netlist(nl);
    let doc = parse(&text).expect("writer output re-parses");
    doc.elaborate_top(nl.name(), &ElaborateOptions::default())
        .expect("writer output re-elaborates")
}

#[test]
fn every_library_cell_roundtrips_isomorphically() {
    for cell in cells::library() {
        let text = write_netlist(&cell);
        let doc = parse(&text).unwrap();
        let back = doc
            .elaborate_cell(cell.name(), &ElaborateOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", cell.name()));
        let outcome = compare(&cell, &back);
        assert!(
            outcome.is_isomorphic(),
            "{} diverged: {:?}",
            cell.name(),
            outcome.mismatch()
        );
        // Port order also survives.
        let names = |nl: &subgemini_netlist::Netlist| -> Vec<String> {
            nl.ports()
                .iter()
                .map(|&p| nl.net_ref(p).name().to_string())
                .collect()
        };
        assert_eq!(names(&cell), names(&back), "{} ports", cell.name());
    }
}

#[test]
fn generated_circuits_roundtrip_isomorphically() {
    for nl in [
        gen::ripple_adder(3).netlist,
        gen::shift_register(3).netlist,
        gen::sram_array(2, 3).netlist,
        gen::random_soup(11, 15).netlist,
    ] {
        let back = roundtrip_flat(&nl);
        let outcome = compare(&nl, &back);
        assert!(
            outcome.is_isomorphic(),
            "{} diverged: {:?}",
            nl.name(),
            outcome.mismatch()
        );
    }
}

#[test]
fn matcher_results_survive_roundtrip() {
    // Matching before and after a SPICE round-trip finds the same count.
    let soup = gen::random_soup(5150, 30);
    let back = roundtrip_flat(&soup.netlist);
    let cell = cells::nand2();
    let before = subgemini::Matcher::new(&cell, &soup.netlist).find_all();
    let after = subgemini::Matcher::new(&cell, &back).find_all();
    assert_eq!(before.count(), after.count());
}

#[test]
fn hierarchical_deck_with_library_cells() {
    // Write the library as .subckts, instantiate via X cards, flatten.
    let mut deck = String::from(".global vdd gnd\n");
    for cell in [cells::inv(), cells::nand2()] {
        deck.push_str(&write_netlist(&cell));
    }
    deck.push_str("Xa in mid inv\nXb mid in2 out nand2\n");
    let doc = parse(&deck).unwrap();
    let flat = doc
        .elaborate_top("mini", &ElaborateOptions::default())
        .unwrap();
    assert_eq!(flat.device_count(), 6);
    let hier = doc
        .elaborate_top("mini", &ElaborateOptions::hierarchical())
        .unwrap();
    assert_eq!(hier.device_count(), 2);
    // The flattened deck contains one real inverter plus... the nand's
    // transistors; matching confirms.
    let found = subgemini::Matcher::new(&cells::inv(), &flat).find_all();
    assert_eq!(found.count(), 1);
    let found = subgemini::Matcher::new(&cells::nand2(), &flat).find_all();
    assert_eq!(found.count(), 1);
}
