//! Event-journal contracts: the merged stream is identical across
//! Phase II thread counts, the exporters produce parseable output, and
//! the Chrome-trace document honors the traceEvents schema.
//!
//! The workloads mirror `undo_log_determinism.rs` — symmetric shapes
//! that force guessing and deep backtracking — because those are
//! exactly the searches where worker interleaving could leak into the
//! journal if the `(candidate rank, seq)` merge order were wrong.

use subgemini::events::{journal_to_chrome_trace, journal_to_ndjson, validate_chrome_trace};
use subgemini::{EventKind, MatchOptions, Matcher};
use subgemini_netlist::{DeviceType, Netlist};
use subgemini_workloads::{cells, gen};

fn run(pattern: &Netlist, main: &Netlist, threads: usize) -> subgemini::MatchOutcome {
    Matcher::new(pattern, main)
        .options(MatchOptions {
            threads,
            trace_events: true,
            ..MatchOptions::default()
        })
        .find_all()
}

/// Fig. 6-style symmetric square (see `undo_log_determinism.rs`).
fn square() -> Netlist {
    let mut nl = Netlist::new("square");
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let (a, x, b, y) = (nl.net("a"), nl.net("x"), nl.net("b"), nl.net("y"));
    nl.mark_port(a);
    nl.mark_port(b);
    nl.add_device("r1", res, &[a, x]).unwrap();
    nl.add_device("r2", res, &[x, b]).unwrap();
    nl.add_device("r3", res, &[b, y]).unwrap();
    nl.add_device("r4", res, &[y, a]).unwrap();
    nl
}

/// The backtrack trap: guessing `Z` fails only after further spreading.
fn trap() -> Netlist {
    let mut nl = Netlist::new("trap");
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let (a, b) = (nl.net("A"), nl.net("B"));
    let (x, y, z, w) = (nl.net("X"), nl.net("Y"), nl.net("Z"), nl.net("W"));
    nl.add_device("ax", res, &[a, x]).unwrap();
    nl.add_device("ay", res, &[a, y]).unwrap();
    nl.add_device("az", res, &[a, z]).unwrap();
    nl.add_device("bx", res, &[b, x]).unwrap();
    nl.add_device("by", res, &[b, y]).unwrap();
    nl.add_device("zw", res, &[z, w]).unwrap();
    nl
}

fn workloads() -> Vec<(&'static str, Netlist, Netlist)> {
    vec![
        ("square-in-trap", square(), trap()),
        ("nand3-in-decoder", cells::nand3(), gen::decoder(3).netlist),
        (
            "fa-in-ripple",
            cells::full_adder(),
            gen::ripple_adder(4).netlist,
        ),
    ]
}

#[test]
fn journal_is_identical_across_thread_counts() {
    for (name, pattern, main) in workloads() {
        let serial = run(&pattern, &main, 1);
        let base = serial.events.as_ref().expect("journal requested");
        assert!(!base.events.is_empty(), "{name}: journal is empty");
        for threads in [2usize, 8] {
            let par = run(&pattern, &main, threads);
            let j = par.events.as_ref().expect("journal requested");
            assert_eq!(
                base.events, j.events,
                "{name}: journal diverges at {threads} threads"
            );
            assert_eq!(base.dropped, j.dropped, "{name}: drop counts diverge");
            assert_eq!(serial.instances, par.instances, "{name}: results diverge");
        }
    }
}

#[test]
fn journal_covers_every_candidate_with_balanced_spans() {
    let outcome = run(&square(), &trap(), 2);
    let journal = outcome.events.as_ref().expect("journal requested");
    let mut begins = 0usize;
    let mut ends = 0usize;
    let mut backtracks = 0usize;
    for e in &journal.events {
        match e.kind {
            EventKind::CandidateBegin { .. } => begins += 1,
            EventKind::CandidateEnd { .. } => ends += 1,
            EventKind::Backtrack { .. } => backtracks += 1,
            _ => {}
        }
    }
    assert_eq!(begins, ends, "unbalanced candidate spans");
    assert_eq!(
        begins, outcome.phase1.cv_size,
        "every CV entry gets a span (no claim/limit policies active)"
    );
    assert_eq!(
        backtracks, outcome.phase2.backtracks,
        "journal backtracks agree with the stats counter"
    );
}

#[test]
fn chrome_trace_export_is_valid_and_ndjson_parses() {
    for (name, pattern, main) in workloads() {
        let outcome = run(&pattern, &main, 8);
        let journal = outcome.events.as_ref().expect("journal requested");
        let doc = journal_to_chrome_trace(journal);
        let n = validate_chrome_trace(&doc)
            .unwrap_or_else(|e| panic!("{name}: invalid chrome trace: {e}"));
        assert!(n > 0, "{name}: empty trace");
        // The serialized document must round-trip through the parser
        // and still validate (the schema contract the CI smoke checks).
        let reparsed = subgemini::metrics::json::parse(&doc.pretty())
            .unwrap_or_else(|e| panic!("{name}: pretty JSON does not reparse: {e}"));
        validate_chrome_trace(&reparsed)
            .unwrap_or_else(|e| panic!("{name}: reparsed trace invalid: {e}"));

        let ndjson = journal_to_ndjson(journal);
        let lines: Vec<&str> = ndjson.lines().collect();
        // One line per event plus the journal_end trailer.
        assert_eq!(lines.len(), journal.events.len() + 1, "{name}");
        for line in &lines {
            subgemini::metrics::json::parse(line)
                .unwrap_or_else(|e| panic!("{name}: bad NDJSON line `{line}`: {e}"));
        }
        assert!(
            lines.last().unwrap().contains("journal_end"),
            "{name}: missing trailer"
        );
    }
}

#[test]
fn per_candidate_cap_bounds_the_journal_thread_invariantly() {
    // A tiny cap truncates every candidate's stream at the same point
    // regardless of which worker ran it, so the journal (including the
    // drop count) stays thread-invariant.
    let opts = |threads| MatchOptions {
        threads,
        trace_events: true,
        trace_events_cap: 4,
        ..MatchOptions::default()
    };
    let pattern = cells::nand3();
    let main = gen::decoder(3).netlist;
    let serial = Matcher::new(&pattern, &main).options(opts(1)).find_all();
    let base = serial.events.as_ref().expect("journal requested");
    assert!(base.dropped > 0, "cap of 4 must drop events here");
    for threads in [2usize, 8] {
        let par = Matcher::new(&pattern, &main)
            .options(opts(threads))
            .find_all();
        let j = par.events.as_ref().expect("journal requested");
        assert_eq!(base.events, j.events, "capped journal diverges");
        assert_eq!(base.dropped, j.dropped, "drop counts diverge");
    }
}
