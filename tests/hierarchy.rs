//! Hierarchy construction (paper §I): flat transistors → extracted
//! cells → hierarchical SPICE → flattened again → isomorphic to the
//! original.

use subgemini::Extractor;
use subgemini_gemini::compare;
use subgemini_spice::{parse, write_hierarchical, ElaborateOptions};
use subgemini_workloads::{cells, gen};

fn used_cells(report: &subgemini::ExtractReport) -> Vec<subgemini_netlist::Netlist> {
    report
        .per_cell
        .iter()
        .filter(|(_, n)| *n > 0)
        .filter_map(|(name, _)| cells::by_name(name))
        .collect()
}

fn full_library_extractor() -> Extractor {
    let mut e = Extractor::new();
    for cell in cells::library() {
        e.add_cell(cell);
    }
    e
}

#[test]
fn flat_to_hierarchy_roundtrip_is_isomorphic() {
    let flat = gen::ripple_adder(4).netlist;
    let (top, report) = full_library_extractor().extract(&flat).unwrap();
    assert_eq!(report.unabsorbed_devices, 0);

    let deck = write_hierarchical(&top, &used_cells(&report));
    assert!(deck.contains(".subckt full_adder"));

    let doc = parse(&deck).unwrap();
    let reflattened = doc
        .elaborate_top(flat.name(), &ElaborateOptions::default())
        .unwrap();
    let outcome = compare(&flat, &reflattened);
    assert!(
        outcome.is_isomorphic(),
        "roundtrip diverged: {:?}",
        outcome.mismatch()
    );
}

#[test]
fn mixed_hierarchy_roundtrip() {
    // Adder + registers + loose gates: multiple cell kinds in one deck.
    let mut flat = gen::ripple_adder(2).netlist;
    let clk = flat.net("clk");
    for i in 0..2 {
        let d = flat.net(format!("s{i}"));
        let q = flat.net(format!("q{i}"));
        subgemini_netlist::instantiate(&mut flat, &cells::dff(), &format!("r{i}"), &[d, clk, q])
            .unwrap();
    }
    let (top, report) = full_library_extractor().extract(&flat).unwrap();
    assert_eq!(report.unabsorbed_devices, 0);
    let deck = write_hierarchical(&top, &used_cells(&report));
    let doc = parse(&deck).unwrap();
    let reflattened = doc
        .elaborate_top(flat.name(), &ElaborateOptions::default())
        .unwrap();
    assert!(compare(&flat, &reflattened).is_isomorphic());
}

#[test]
fn hierarchical_deck_is_humanly_structured() {
    let flat = gen::sram_array(2, 2).netlist;
    let (top, report) = full_library_extractor().extract(&flat).unwrap();
    let deck = write_hierarchical(&top, &used_cells(&report));
    // One subckt definition, four instances.
    assert_eq!(deck.matches(".subckt sram6t").count(), 1);
    assert_eq!(deck.matches(" sram6t").count(), 1 + 4); // def + 4 X cards
                                                        // Global rails declared once at deck level.
    assert_eq!(deck.matches(".global").count(), 1);
}

#[test]
fn hierarchize_recovers_planted_hierarchy_per_level() {
    let chip = gen::hierarchical_chip(1, 3, 400);
    let outcome = subgemini::hier::hierarchize(
        &chip.generated.netlist,
        &chip.library,
        &subgemini::MatchOptions::extraction(),
    )
    .unwrap();
    assert_eq!(outcome.report.unabsorbed_devices, 0);
    assert_eq!(outcome.report.levels.len(), 3);
    for (i, cells) in chip.level_cells.iter().enumerate() {
        let level = &outcome.report.levels[i];
        assert_eq!(level.level, i + 1);
        for cell in cells {
            let found = level
                .per_cell
                .iter()
                .find(|(name, _)| name == cell)
                .map(|(_, n)| *n)
                .unwrap_or(0);
            assert_eq!(
                found,
                chip.expected_count(cell),
                "level {} cell {cell}: found != planted",
                i + 1
            );
        }
    }
}

#[test]
fn hierarchize_roundtrip_is_isomorphic_across_seeds() {
    for seed in 0..32u64 {
        let chip = gen::hierarchical_chip(seed, 3, 250);
        let flat = &chip.generated.netlist;
        let outcome = subgemini::hier::hierarchize(
            flat,
            &chip.library,
            &subgemini::MatchOptions::extraction(),
        )
        .unwrap();
        assert_eq!(
            outcome.report.unabsorbed_devices, 0,
            "seed {seed}: residue left behind"
        );
        for (cell, &want) in &chip.expected {
            assert_eq!(
                outcome.report.count_of(cell),
                want,
                "seed {seed}: count for {cell}"
            );
        }
        let deck = write_hierarchical(&outcome.top, &outcome.used_cells());
        let doc = parse(&deck).unwrap();
        let reflattened = doc
            .elaborate_top(flat.name(), &ElaborateOptions::default())
            .unwrap();
        let cmp = compare(flat, &reflattened);
        assert!(
            cmp.is_isomorphic(),
            "seed {seed}: roundtrip diverged: {:?}",
            cmp.mismatch()
        );
    }
}

#[test]
fn hierarchize_bytes_are_runtime_config_invariant() {
    use subgemini::{MatchOptions, Phase2Scheduler, ShardPolicy};
    let chip = gen::hierarchical_chip(9, 3, 300);
    let flat = &chip.generated.netlist;
    let mut golden: Option<(String, String)> = None;
    for threads in [1usize, 2, 8] {
        for scheduler in [Phase2Scheduler::WorkStealing, Phase2Scheduler::StaticChunks] {
            for shards in [ShardPolicy::Off, ShardPolicy::Count(2)] {
                let mut options = MatchOptions::extraction();
                options.threads = threads;
                options.scheduler = scheduler;
                options.shards = shards;
                let outcome = subgemini::hier::hierarchize(flat, &chip.library, &options).unwrap();
                let report = outcome.report.to_json().pretty();
                let deck = write_hierarchical(&outcome.top, &outcome.used_cells());
                match &golden {
                    None => golden = Some((report, deck)),
                    Some((r, d)) => {
                        assert_eq!(
                            r, &report,
                            "report drifted at threads={threads} {scheduler:?} {shards:?}"
                        );
                        assert_eq!(
                            d, &deck,
                            "deck drifted at threads={threads} {scheduler:?} {shards:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn hierarchical_mode_match_on_gate_level() {
    // After extraction, match at the *gate* level: find dff composites
    // in the hierarchical netlist using a composite pattern.
    let flat = gen::shift_register(4).netlist;
    let (top, _report) = full_library_extractor().extract(&flat).unwrap();
    assert_eq!(top.device_count(), 4);
    // Pattern: one composite dff device with the same type. Build it
    // from the extractor's own type table to guarantee identical
    // terminal classes.
    let dffty = top.type_id("dff").expect("composite type");
    let ty = top.device_type(dffty).clone();
    let mut pat = subgemini_netlist::Netlist::new("dff_gate");
    let pt = pat.add_type(ty).unwrap();
    let (d, clk, q) = (pat.net("d"), pat.net("clk"), pat.net("q"));
    pat.mark_port(d);
    pat.mark_port(clk);
    pat.mark_port(q);
    pat.add_device("g", pt, &[d, clk, q]).unwrap();
    let found = subgemini::Matcher::new(&pat, &top).find_all();
    assert_eq!(found.count(), 4, "gate-level matching works on composites");
}
