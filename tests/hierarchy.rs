//! Hierarchy construction (paper §I): flat transistors → extracted
//! cells → hierarchical SPICE → flattened again → isomorphic to the
//! original.

use subgemini::Extractor;
use subgemini_gemini::compare;
use subgemini_spice::{parse, write_hierarchical, ElaborateOptions};
use subgemini_workloads::{cells, gen};

fn used_cells(report: &subgemini::ExtractReport) -> Vec<subgemini_netlist::Netlist> {
    report
        .per_cell
        .iter()
        .filter(|(_, n)| *n > 0)
        .filter_map(|(name, _)| cells::by_name(name))
        .collect()
}

fn full_library_extractor() -> Extractor {
    let mut e = Extractor::new();
    for cell in cells::library() {
        e.add_cell(cell);
    }
    e
}

#[test]
fn flat_to_hierarchy_roundtrip_is_isomorphic() {
    let flat = gen::ripple_adder(4).netlist;
    let (top, report) = full_library_extractor().extract(&flat).unwrap();
    assert_eq!(report.unabsorbed_devices, 0);

    let deck = write_hierarchical(&top, &used_cells(&report));
    assert!(deck.contains(".subckt full_adder"));

    let doc = parse(&deck).unwrap();
    let reflattened = doc
        .elaborate_top(flat.name(), &ElaborateOptions::default())
        .unwrap();
    let outcome = compare(&flat, &reflattened);
    assert!(
        outcome.is_isomorphic(),
        "roundtrip diverged: {:?}",
        outcome.mismatch()
    );
}

#[test]
fn mixed_hierarchy_roundtrip() {
    // Adder + registers + loose gates: multiple cell kinds in one deck.
    let mut flat = gen::ripple_adder(2).netlist;
    let clk = flat.net("clk");
    for i in 0..2 {
        let d = flat.net(format!("s{i}"));
        let q = flat.net(format!("q{i}"));
        subgemini_netlist::instantiate(&mut flat, &cells::dff(), &format!("r{i}"), &[d, clk, q])
            .unwrap();
    }
    let (top, report) = full_library_extractor().extract(&flat).unwrap();
    assert_eq!(report.unabsorbed_devices, 0);
    let deck = write_hierarchical(&top, &used_cells(&report));
    let doc = parse(&deck).unwrap();
    let reflattened = doc
        .elaborate_top(flat.name(), &ElaborateOptions::default())
        .unwrap();
    assert!(compare(&flat, &reflattened).is_isomorphic());
}

#[test]
fn hierarchical_deck_is_humanly_structured() {
    let flat = gen::sram_array(2, 2).netlist;
    let (top, report) = full_library_extractor().extract(&flat).unwrap();
    let deck = write_hierarchical(&top, &used_cells(&report));
    // One subckt definition, four instances.
    assert_eq!(deck.matches(".subckt sram6t").count(), 1);
    assert_eq!(deck.matches(" sram6t").count(), 1 + 4); // def + 4 X cards
                                                        // Global rails declared once at deck level.
    assert_eq!(deck.matches(".global").count(), 1);
}

#[test]
fn hierarchical_mode_match_on_gate_level() {
    // After extraction, match at the *gate* level: find dff composites
    // in the hierarchical netlist using a composite pattern.
    let flat = gen::shift_register(4).netlist;
    let (top, _report) = full_library_extractor().extract(&flat).unwrap();
    assert_eq!(top.device_count(), 4);
    // Pattern: one composite dff device with the same type. Build it
    // from the extractor's own type table to guarantee identical
    // terminal classes.
    let dffty = top.type_id("dff").expect("composite type");
    let ty = top.device_type(dffty).clone();
    let mut pat = subgemini_netlist::Netlist::new("dff_gate");
    let pt = pat.add_type(ty).unwrap();
    let (d, clk, q) = (pat.net("d"), pat.net("clk"), pat.net("q"));
    pat.mark_port(d);
    pat.mark_port(clk);
    pat.mark_port(q);
    pat.add_device("g", pt, &[d, clk, q]).unwrap();
    let found = subgemini::Matcher::new(&pat, &top).find_all();
    assert_eq!(found.count(), 4, "gate-level matching works on composites");
}
