//! Warm-start contract: matching against a preloaded `.sgc` artifact
//! must be observationally identical to a cold compile — same
//! instances, same stats — while the metrics tell the true story:
//! `artifact.warm_hits` / `artifact.load_ns` on a hit, a zero main
//! compile share, `artifact.warm_misses` plus a silent cold fallback
//! when the digest disagrees or globals are ignored, and exactly one
//! hit across an entire pattern library sharing the handle.

use subgemini::{find_all, find_all_many, MatchOptions, MatchOutcome, Matcher, WarmMain};
use subgemini_netlist::{structural_digest, Artifact, Netlist};
use subgemini_workloads::{cells, gen};

fn warm_opts(warm: WarmMain) -> MatchOptions {
    MatchOptions {
        collect_metrics: true,
        warm_main: Some(warm),
        ..MatchOptions::default()
    }
}

fn counter(o: &MatchOutcome, name: &str) -> u64 {
    o.metrics
        .as_ref()
        .expect("collect_metrics was set")
        .counters
        .get(name)
}

#[test]
fn warm_and_cold_runs_agree_on_everything_observable() {
    let pattern = cells::full_adder();
    let g = gen::ripple_adder(12);
    let artifact = Artifact::build(&g.netlist);
    let cold = Matcher::new(&pattern, &g.netlist)
        .options(MatchOptions {
            collect_metrics: true,
            ..MatchOptions::default()
        })
        .find_all();
    let warm = Matcher::new(&pattern, &g.netlist)
        .options(warm_opts(WarmMain::from_artifact(artifact, 1234)))
        .find_all();

    assert_eq!(cold.instances, warm.instances, "instances diverge");
    assert_eq!(cold.key, warm.key);
    assert_eq!(cold.phase1, warm.phase1);
    assert_eq!(cold.phase2, warm.phase2);
    assert_eq!(cold.completeness, warm.completeness);
    assert_eq!(cold.count(), 12, "one full adder per ripple stage");

    // Hit accounting: the artifact's load cost is surfaced verbatim,
    // and the main circuit's compile share drops out of `compile_ns`
    // (what remains is the pattern compile alone).
    assert_eq!(counter(&warm, "artifact.warm_hits"), 1);
    assert_eq!(counter(&warm, "artifact.load_ns"), 1234);
    assert_eq!(counter(&warm, "artifact.warm_misses"), 0);
    let (cm, wm) = (
        cold.metrics.as_ref().unwrap(),
        warm.metrics.as_ref().unwrap(),
    );
    assert!(
        wm.compile_ns < cm.compile_ns,
        "warm compile_ns ({}) must shed the main share of the cold one ({})",
        wm.compile_ns,
        cm.compile_ns
    );
    assert_eq!(counter(&cold, "artifact.warm_hits"), 0);
    assert_eq!(counter(&cold, "artifact.warm_misses"), 0);
}

#[test]
fn warm_hit_happens_through_an_actual_file_round_trip() {
    let pattern = cells::nand2();
    let g = gen::ripple_adder(4);
    let path = std::env::temp_dir().join("sgc_warm_start_test.sgc");
    Artifact::build(&g.netlist).save(&path).unwrap();
    let t0 = std::time::Instant::now();
    let artifact = Artifact::load(&path).unwrap();
    let load_ns = t0.elapsed().as_nanos() as u64;
    std::fs::remove_file(&path).unwrap();

    assert_eq!(artifact.source_digest, structural_digest(&g.netlist));
    let warm = Matcher::new(&pattern, &g.netlist)
        .options(warm_opts(WarmMain::from_artifact(artifact, load_ns)))
        .find_all();
    assert_eq!(counter(&warm, "artifact.warm_hits"), 1);
    assert_eq!(counter(&warm, "artifact.load_ns"), load_ns);
    let cold = find_all(&pattern, &g.netlist, &MatchOptions::default());
    assert_eq!(cold.instances, warm.instances);
}

#[test]
fn digest_mismatch_falls_back_to_a_cold_compile() {
    let pattern = cells::inv();
    let g = gen::ripple_adder(4);
    // An artifact compiled from a *different* circuit: same cells, one
    // extra stage. The digest check must refuse it and recompile.
    let other = gen::ripple_adder(5);
    let stale = Artifact::build(&other.netlist);
    assert_ne!(stale.source_digest, structural_digest(&g.netlist));

    let warm = Matcher::new(&pattern, &g.netlist)
        .options(warm_opts(WarmMain::from_artifact(stale, 99)))
        .find_all();
    let cold = find_all(&pattern, &g.netlist, &MatchOptions::default());
    assert_eq!(
        cold.instances, warm.instances,
        "fallback must silently produce cold results"
    );
    assert_eq!(counter(&warm, "artifact.warm_misses"), 1);
    assert_eq!(counter(&warm, "artifact.warm_hits"), 0);
    assert_eq!(counter(&warm, "artifact.load_ns"), 0);
}

#[test]
fn ignoring_globals_bypasses_the_warm_handle() {
    // With globals ignored the main circuit is rewritten before
    // compilation, so the artifact's snapshot no longer describes the
    // circuit being searched; the matcher must fall back cold.
    let pattern = cells::inv();
    let g = gen::ripple_adder(4);
    let artifact = Artifact::build(&g.netlist);
    let warm = Matcher::new(&pattern, &g.netlist)
        .options(MatchOptions {
            respect_globals: false,
            ..warm_opts(WarmMain::from_artifact(artifact, 77))
        })
        .find_all();
    let cold = find_all(
        &pattern,
        &g.netlist,
        &MatchOptions {
            respect_globals: false,
            ..MatchOptions::default()
        },
    );
    assert_eq!(cold.instances, warm.instances);
    assert_eq!(counter(&warm, "artifact.warm_hits"), 0);
    assert_eq!(
        counter(&warm, "artifact.warm_misses"),
        1,
        "the unusable handle must be reported as a miss"
    );
}

#[test]
fn pattern_library_shares_one_warm_handle() {
    // `find_all_many` prepares the main circuit once; with a warm
    // handle the whole library rides one Arc'd snapshot and one index.
    // The hit is attributed exactly once (first pattern), later
    // patterns report the cache hit as usual — the same accounting
    // shape `tests/many_patterns.rs` pins for cold runs.
    let library = [cells::inv(), cells::nand2(), cells::full_adder()];
    let refs: Vec<&Netlist> = library.iter().collect();
    let g = gen::ripple_adder(6);
    let artifact = Artifact::build(&g.netlist);
    let options = warm_opts(WarmMain::from_artifact(artifact, 4321));
    let outcomes = find_all_many(&refs, &g.netlist, &options);
    assert_eq!(outcomes.len(), refs.len());
    for (i, (pattern, outcome)) in refs.iter().zip(&outcomes).enumerate() {
        let solo = find_all(pattern, &g.netlist, &MatchOptions::default());
        assert_eq!(
            solo.instances,
            outcome.instances,
            "pattern {}: warm library run diverges",
            pattern.name()
        );
        if i == 0 {
            assert_eq!(counter(outcome, "artifact.warm_hits"), 1, "pattern {i}");
            assert_eq!(counter(outcome, "artifact.load_ns"), 4321, "pattern {i}");
            assert_eq!(counter(outcome, "compile.main_cache_hits"), 0);
        } else {
            assert_eq!(
                counter(outcome, "artifact.warm_hits"),
                0,
                "pattern {i}: the warm hit must be attributed once"
            );
            assert_eq!(
                counter(outcome, "compile.main_cache_hits"),
                1,
                "pattern {i}"
            );
        }
    }
}

#[test]
fn warm_handle_serves_the_prune_index_without_a_rebuild() {
    // PrunePolicy::Auto only prunes when an index comes for free with
    // the warm snapshot — and then `index.build_ns` must stay zero
    // while the prune tallies engage.
    let pattern = cells::inv();
    let mut g = gen::near_miss_field(&pattern, 24, 0x5347_e140);
    for i in 0..8 {
        let bindings: Vec<_> = (0..pattern.ports().len())
            .map(|p| g.netlist.net(format!("t{i}p{p}")))
            .collect();
        g.plant(&pattern, &format!("pl{i}"), &bindings);
    }
    let artifact = Artifact::build(&g.netlist);
    let warm = Matcher::new(&pattern, &g.netlist)
        .options(warm_opts(WarmMain::from_artifact(artifact, 5)))
        .find_all();
    assert_eq!(warm.count(), g.planted_count("inv"));
    assert!(
        counter(&warm, "index.pruned_candidates") > 0,
        "Auto must prune off the warm index"
    );
    assert_eq!(
        counter(&warm, "index.build_ns"),
        0,
        "the index came from the artifact; nothing to build"
    );
    let cold = find_all(
        &pattern,
        &g.netlist,
        &MatchOptions {
            collect_metrics: true,
            ..MatchOptions::default()
        },
    );
    assert_eq!(cold.instances, warm.instances);
    assert_eq!(
        counter(&cold, "index.pruned_candidates"),
        0,
        "cold Auto has no index and must not prune"
    );
}
