//! Integration tests reproducing the paper's worked examples
//! (experiments E1–E3 of DESIGN.md).

use subgemini::{MatchOptions, Matcher};
use subgemini_netlist::Vertex;
use subgemini_workloads::paper;

/// E1 (Fig. 1/2/4, §III): Phase I must choose key vertex `n4` and the
/// candidate vector `{n13, n14}` — the exact result reported in §IV.
#[test]
fn fig1_phase1_selects_n4_and_n13_n14() {
    let s = paper::fig1_pattern();
    let g = paper::fig1_main();
    let cv = subgemini::candidates::generate(&s, &g);
    let key = cv.key.expect("key chosen");
    let n4 = s.find_net("n4").unwrap();
    assert_eq!(key, Vertex::Net(n4), "key vertex is the internal net n4");
    let mut names: Vec<&str> = cv
        .candidates
        .iter()
        .map(|v| match v {
            Vertex::Net(n) => g.net_ref(*n).name(),
            Vertex::Device(d) => g.device(*d).name(),
        })
        .collect();
    names.sort_unstable();
    assert_eq!(
        names,
        vec!["n13", "n14"],
        "candidate vector is {{n13, n14}}"
    );
}

/// E1 (Table 1): Phase II verifies the true candidate and recovers the
/// paper's mapping; the false candidate `n13` is rejected.
#[test]
fn fig1_phase2_finds_the_paper_mapping() {
    let s = paper::fig1_pattern();
    let g = paper::fig1_main();
    let outcome = Matcher::new(&s, &g).find_all();
    assert_eq!(outcome.count(), 1, "exactly one instance");
    assert_eq!(
        outcome.phase2.false_candidates, 1,
        "n13 is a false candidate rejected by Phase II"
    );
    let m = &outcome.instances[0];
    for (sname, gname) in paper::fig1_expected_mapping() {
        if let Some(sd) = s.find_device(sname) {
            let gd = m.device(sd);
            assert_eq!(g.device(gd).name(), gname, "image of {sname}");
        } else {
            let sn = s.find_net(sname).unwrap();
            let gn = m.net(sn);
            assert_eq!(g.net_ref(gn).name(), gname, "image of {sname}");
        }
    }
}

/// E1 (Table 1): the recorded trace reaches a fully matched state and
/// needs a handful of passes, like the paper's 7.
#[test]
fn fig1_trace_has_paperlike_depth() {
    let s = paper::fig1_pattern();
    let g = paper::fig1_main();
    // Table 1 spreads labels from matched external nets (pass 5 relabels
    // D1 from the boxed K/L), so the trace uses the paper-faithful
    // spreading mode rather than the default port-image suppression.
    let outcome = Matcher::new(&s, &g)
        .options(MatchOptions {
            record_trace: true,
            spread_from_port_images: true,
            ..MatchOptions::default()
        })
        .find_all();
    let trace = outcome.trace.expect("trace recorded");
    // One simultaneous net+device pass here covers what Table 1 spreads
    // over two alternating passes; 2–7 passes is the expected band.
    assert!(
        (2..=7).contains(&trace.pass_count()),
        "pass count {} outside the paper-like band",
        trace.pass_count()
    );
    let last = trace.passes.last().unwrap();
    assert!(last.s_devices.iter().all(|c| c.matched));
    assert!(last.s_nets.iter().all(|c| c.matched));
}

/// E2 (Fig. 5): symmetry requires a guess; either choice succeeds, so
/// there is no backtracking.
#[test]
fn fig5_guesses_once_without_backtracking() {
    let (p, m) = paper::fig5_pair();
    let outcome = Matcher::new(&p, &m).find_all();
    assert_eq!(outcome.count(), 1);
    assert!(outcome.phase2.guesses >= 1);
    assert_eq!(outcome.phase2.backtracks, 0);
}

/// E3 (Fig. 7): the inverter is found inside the NAND exactly when
/// special signals are ignored.
#[test]
fn fig7_special_signals_gate_the_false_inverter() {
    let inv = paper::fig7_inverter();
    let nand = paper::fig7_nand();
    let respected = Matcher::new(&inv, &nand).find_all();
    assert_eq!(respected.count(), 0);
    let ignored = Matcher::new(&inv, &nand)
        .options(MatchOptions::ignore_globals())
        .find_all();
    assert_eq!(ignored.count(), 1);
}
