//! Backtrack correctness under the Phase II undo log.
//!
//! Phase II reuses one dense search state per worker, rolling back via
//! an inverse-operation log instead of cloning maps (see DESIGN.md).
//! These workloads are built to exercise the rollback machinery hard —
//! symmetric patterns in the paper's Fig. 6 style whose ambiguity
//! forces guessing, plus a trap circuit whose wrong guesses fail deep
//! and must unwind — and assert that thread counts 1, 2, and 8 return
//! identical instance sets with identical effort counters.

use subgemini::{MatchOptions, Matcher, SubMatch};
use subgemini_netlist::{DeviceType, Netlist};
use subgemini_workloads::{cells, gen};

fn run(pattern: &Netlist, main: &Netlist, threads: usize) -> subgemini::MatchOutcome {
    Matcher::new(pattern, main)
        .options(MatchOptions {
            threads,
            ..MatchOptions::default()
        })
        .find_all()
}

fn device_sets(instances: &[SubMatch]) -> Vec<Vec<subgemini_netlist::DeviceId>> {
    instances.iter().map(SubMatch::device_set).collect()
}

fn assert_thread_invariant(
    name: &str,
    pattern: &Netlist,
    main: &Netlist,
) -> subgemini::MatchOutcome {
    let serial = run(pattern, main, 1);
    for threads in [2usize, 8] {
        let par = run(pattern, main, threads);
        assert_eq!(
            device_sets(&serial.instances),
            device_sets(&par.instances),
            "{name}: instances diverge at {threads} threads"
        );
        assert_eq!(
            serial.instances, par.instances,
            "{name}: full mappings diverge at {threads} threads"
        );
        assert_eq!(
            (serial.phase2.guesses, serial.phase2.backtracks),
            (par.phase2.guesses, par.phase2.backtracks),
            "{name}: effort counters diverge at {threads} threads"
        );
    }
    serial
}

/// A 4-cycle of resistors `a-x-b-y-a` with `a`,`b` as ports, so its
/// two interior nets are interchangeable — the Fig. 6 shape: symmetry
/// that labeling cannot break, only guessing can.
fn square() -> Netlist {
    let mut nl = Netlist::new("square");
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let (a, x, b, y) = (nl.net("a"), nl.net("x"), nl.net("b"), nl.net("y"));
    nl.mark_port(a);
    nl.mark_port(b);
    nl.add_device("r1", res, &[a, x]).unwrap();
    nl.add_device("r2", res, &[x, b]).unwrap();
    nl.add_device("r3", res, &[b, y]).unwrap();
    nl.add_device("r4", res, &[y, a]).unwrap();
    nl
}

/// A near-complete-bipartite trap: `A` fans out to `X`,`Y`,`Z` and `B`
/// only to `X`,`Y`; the dangling `Z-W` arm makes `Z` look locally like
/// `X`/`Y` (same degree), so a guess of `Z` only fails after further
/// spreading and must backtrack.
fn trap() -> Netlist {
    let mut nl = Netlist::new("trap");
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let (a, b) = (nl.net("A"), nl.net("B"));
    let (x, y, z, w) = (nl.net("X"), nl.net("Y"), nl.net("Z"), nl.net("W"));
    nl.add_device("ax", res, &[a, x]).unwrap();
    nl.add_device("ay", res, &[a, y]).unwrap();
    nl.add_device("az", res, &[a, z]).unwrap();
    nl.add_device("bx", res, &[b, x]).unwrap();
    nl.add_device("by", res, &[b, y]).unwrap();
    nl.add_device("zw", res, &[z, w]).unwrap();
    nl
}

/// A ring of `n` identical resistors: maximal symmetry, zero labels to
/// anchor on, so Phase II must guess a traversal direction.
fn ring(nl: &mut Netlist, n: usize, prefix: &str) {
    let res = match nl.device_types().iter().position(|t| t.name() == "res") {
        Some(i) => subgemini_netlist::DeviceTypeId::new(i as u32),
        None => nl.add_type(DeviceType::two_terminal("res")).unwrap(),
    };
    let nets: Vec<_> = (0..n).map(|i| nl.net(format!("{prefix}{i}"))).collect();
    for i in 0..n {
        nl.add_device(format!("{prefix}r{i}"), res, &[nets[i], nets[(i + 1) % n]])
            .unwrap();
    }
}

#[test]
fn wrong_guesses_backtrack_and_stay_deterministic() {
    let outcome = assert_thread_invariant("square-in-trap", &square(), &trap());
    assert_eq!(outcome.count(), 1, "exactly one 4-cycle avoids Z");
    assert!(
        outcome.phase2.guesses > 0,
        "the X/Y/Z ambiguity must force guessing"
    );
    assert!(
        outcome.phase2.backtracks > 0,
        "guessing Z must fail deep and unwind through the undo log"
    );
    // The surviving instance uses the X/Y arms, never Z or the decoy.
    let main = trap();
    let m = &outcome.instances[0];
    for &d in &m.devices {
        let name = main.device(d).name();
        assert!(
            !name.contains('z') && !name.contains('Z'),
            "instance absorbed trap arm {name}"
        );
    }
}

#[test]
fn symmetric_rings_guess_without_divergence() {
    let mut pattern = Netlist::new("rings44");
    ring(&mut pattern, 4, "p");
    ring(&mut pattern, 4, "q");
    let mut main = Netlist::new("rings446");
    ring(&mut main, 4, "a");
    ring(&mut main, 4, "b");
    ring(&mut main, 6, "c");
    let outcome = assert_thread_invariant("double-ring", &pattern, &main);
    assert!(outcome.count() >= 1, "the two 4-rings embed");
    assert!(
        outcome.phase2.guesses > 0,
        "ring symmetry must force guessing"
    );
    // No instance may absorb a 6-ring resistor.
    for m in &outcome.instances {
        for &d in &m.devices {
            assert!(!main.device(d).name().starts_with('c'));
        }
    }
}

#[test]
fn interchangeable_gate_inputs_stay_deterministic() {
    // NAND inputs are interchangeable (paper Fig. 6): matching nand3
    // into a decoder guesses among input permutations.
    let decoder = gen::decoder(3);
    let outcome = assert_thread_invariant("nand3-in-decoder", &cells::nand3(), &decoder.netlist);
    assert_eq!(outcome.count(), decoder.structural_count("nand3"));
    assert!(
        outcome.phase2.guesses > 0,
        "input symmetry must force guessing"
    );
}

#[test]
fn repeated_runs_reuse_state_cleanly() {
    // The same matcher run twice must agree with itself — any residue
    // left in the per-worker search state by an unbalanced rollback
    // would show up here.
    let pattern = square();
    let main = trap();
    let first = run(&pattern, &main, 2);
    let second = run(&pattern, &main, 2);
    assert_eq!(first.instances, second.instances);
    assert_eq!(
        (first.phase2.guesses, first.phase2.backtracks),
        (second.phase2.guesses, second.phase2.backtracks)
    );
}
