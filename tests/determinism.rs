//! Determinism guarantees: the reported instance list is independent of
//! the Phase II worker count, the trace-recording (serial) path agrees
//! with the parallel one, and metrics collection never perturbs the
//! match itself.

use subgemini::{MatchOptions, Matcher};
use subgemini_netlist::Netlist;
use subgemini_workloads::{analog, cells, gen};

fn workloads() -> Vec<(Netlist, Netlist)> {
    vec![
        (cells::full_adder(), gen::ripple_adder(6).netlist),
        (cells::inv(), gen::ripple_adder(4).netlist),
        (cells::nand3(), gen::decoder(3).netlist),
        (cells::dff(), gen::shift_register(8).netlist),
        (
            analog::two_stage_opamp(),
            analog::mixed_signal_chip(7, 3).netlist,
        ),
    ]
}

fn run(pattern: &Netlist, main: &Netlist, opts: MatchOptions) -> subgemini::MatchOutcome {
    Matcher::new(pattern, main).options(opts).find_all()
}

#[test]
fn instances_are_identical_across_thread_counts() {
    for (pattern, main) in workloads() {
        let serial = run(
            &pattern,
            &main,
            MatchOptions {
                threads: 1,
                ..MatchOptions::default()
            },
        );
        assert!(serial.count() > 0, "workload {} found nothing", main.name());
        for threads in [2, 8] {
            let parallel = run(
                &pattern,
                &main,
                MatchOptions {
                    threads,
                    ..MatchOptions::default()
                },
            );
            assert_eq!(
                serial.instances,
                parallel.instances,
                "{}: threads 1 vs {threads} disagree",
                main.name()
            );
            assert_eq!(serial.key, parallel.key);
            assert_eq!(serial.phase1, parallel.phase1, "{}", main.name());
        }
    }
}

#[test]
fn trace_recording_forces_serial_and_agrees_with_parallel() {
    for (pattern, main) in workloads() {
        let traced = run(
            &pattern,
            &main,
            MatchOptions {
                threads: 8,
                record_trace: true,
                ..MatchOptions::default()
            },
        );
        let parallel = run(
            &pattern,
            &main,
            MatchOptions {
                threads: 8,
                ..MatchOptions::default()
            },
        );
        assert_eq!(traced.instances, parallel.instances, "{}", main.name());
        // A found instance must come with a trace when recording; the
        // trace replays the first verified candidate.
        let t = traced
            .trace
            .as_ref()
            .unwrap_or_else(|| panic!("{}: record_trace set but no trace returned", main.name()));
        assert!(t.pass_count() >= 1);
    }
}

#[test]
fn event_tracing_does_not_perturb_results() {
    for (pattern, main) in workloads() {
        for threads in [1, 8] {
            let plain = run(
                &pattern,
                &main,
                MatchOptions {
                    threads,
                    ..MatchOptions::default()
                },
            );
            let traced = run(
                &pattern,
                &main,
                MatchOptions {
                    threads,
                    trace_events: true,
                    collect_metrics: true,
                    ..MatchOptions::default()
                },
            );
            // Off leaves no residue of the subsystem at all.
            assert!(plain.events.is_none());
            // On changes nothing about the search itself.
            assert_eq!(plain.instances, traced.instances, "{}", main.name());
            assert_eq!(plain.phase1, traced.phase1, "{}", main.name());
            assert_eq!(plain.phase2, traced.phase2, "{}", main.name());
            assert_eq!(plain.key, traced.key);
            let journal = traced.events.as_ref().expect("journal requested");
            assert!(!journal.events.is_empty(), "{}", main.name());
        }
    }
}

#[test]
fn metrics_collection_does_not_perturb_results() {
    for (pattern, main) in workloads() {
        for threads in [1, 8] {
            let plain = run(
                &pattern,
                &main,
                MatchOptions {
                    threads,
                    ..MatchOptions::default()
                },
            );
            let measured = run(
                &pattern,
                &main,
                MatchOptions {
                    threads,
                    collect_metrics: true,
                    ..MatchOptions::default()
                },
            );
            // Opt-out leaves no trace of the subsystem at all.
            assert!(plain.metrics.is_none());
            // Opt-in changes nothing but the metrics field.
            let m = measured.metrics.as_ref().expect("metrics collected");
            assert_eq!(plain.instances, measured.instances);
            assert_eq!(plain.phase1, measured.phase1);
            assert_eq!(plain.phase2, measured.phase2);
            assert_eq!(plain.key, measured.key);
            assert!(m.total_ns > 0);
            assert!(m.threads_used >= 1);
            assert_eq!(m.worker_busy_ns.len(), m.threads_used);
            let util = m.worker_utilization();
            assert!((0.0..=1.0).contains(&util), "{util}");
        }
    }
}
