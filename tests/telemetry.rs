//! The telemetry layer's two load-bearing contracts (DESIGN §3h):
//!
//! 1. **Zero perturbation** — folding request samples into the
//!    engine's cumulative rollups may never change what a search
//!    answers. Instances, journals, and truncation points must be
//!    byte-identical with telemetry on and off, across thread counts
//!    and both Phase II schedulers, including under budgets.
//! 2. **Correlation without contamination** — every request gets an
//!    engine-minted id, stamped on the outcome and the response, but
//!    journal *event bytes* stay id-free so cross-request journal
//!    equality keeps holding.

use subgemini::{MatchOutcome, Phase2Scheduler, PrunePolicy, WorkBudget};
use subgemini_engine::{
    CircuitSource, Engine, ExplainRequest, FindRequest, LibrarySource, PatternSource,
    RequestOptions, SurveyRequest,
};
use subgemini_workloads::{cells, gen};

fn assert_outcomes_identical(a: &MatchOutcome, b: &MatchOutcome) {
    assert_eq!(a.instances, b.instances);
    assert_eq!(a.key, b.key);
    assert_eq!(a.phase1, b.phase1);
    assert_eq!(a.phase2, b.phase2);
    assert_eq!(a.completeness, b.completeness);
    assert_eq!(a.events, b.events);
}

/// One engine with telemetry folding, one with it switched off, same
/// registered circuit: every (threads, scheduler, budget) cell must
/// answer identically. The budgeted cells matter most — a perturbed
/// truncation point is exactly the bug this test exists to catch.
#[test]
fn telemetry_on_and_off_answer_byte_identically() {
    let main = gen::ripple_adder(24).netlist;
    let pattern = cells::full_adder();
    let on = Engine::new();
    let off = Engine::new();
    off.telemetry().set_enabled(false);
    assert!(on.telemetry().enabled());
    assert!(!off.telemetry().enabled());
    on.register_circuit("chip", main.clone());
    off.register_circuit("chip", main);

    let budgets: [Option<WorkBudget>; 2] = [
        None,
        Some(WorkBudget {
            max_effort: Some(40),
            ..WorkBudget::default()
        }),
    ];
    for budget in &budgets {
        for scheduler in [Phase2Scheduler::WorkStealing, Phase2Scheduler::StaticChunks] {
            for threads in [1usize, 2, 8] {
                let options = RequestOptions {
                    threads,
                    scheduler,
                    budget: budget.clone(),
                    trace_events: true,
                    prune: PrunePolicy::Never,
                    ..RequestOptions::default()
                };
                let request = |engine: &Engine| {
                    engine
                        .find(&FindRequest {
                            circuit: CircuitSource::Registered("chip"),
                            pattern: PatternSource::Inline(&pattern),
                            options: options.clone(),
                        })
                        .unwrap()
                };
                let a = request(&on);
                let b = request(&off);
                assert_outcomes_identical(&a.outcome, &b.outcome);
                assert_eq!(a.instance_devices, b.instance_devices);
                assert_eq!(
                    a.effort_spent, b.effort_spent,
                    "threads={threads} scheduler={scheduler:?} budget={budget:?}"
                );
            }
        }
    }
    // The disabled engine accumulated nothing.
    assert_eq!(off.telemetry().snapshot().requests, 0);
    assert!(off.telemetry().snapshot().endpoints.is_empty());
    // The enabled one folded every cell of the matrix.
    let snap = on.telemetry().snapshot();
    assert_eq!(snap.requests, 12);
    assert_eq!(snap.endpoint("find").unwrap().requests, 12);
    assert_eq!(snap.circuit("chip").unwrap().requests, 12);
}

#[test]
fn request_ids_are_minted_sequentially_and_stamped_through() {
    let main = gen::ripple_adder(4).netlist;
    let pattern = cells::full_adder();
    let engine = Engine::new();
    engine.register_circuit("chip", main);
    for expect in 1u64..=3 {
        let resp = engine
            .find(&FindRequest {
                circuit: CircuitSource::Registered("chip"),
                pattern: PatternSource::Inline(&pattern),
                options: RequestOptions::default(),
            })
            .unwrap();
        assert_eq!(resp.request_id, expect);
        assert_eq!(resp.outcome.request_id, Some(expect));
    }
    // A caller-supplied id is honoured verbatim and does not advance
    // the mint.
    let resp = engine
        .find(&FindRequest {
            circuit: CircuitSource::Registered("chip"),
            pattern: PatternSource::Inline(&pattern),
            options: RequestOptions {
                request_id: Some(777),
                ..RequestOptions::default()
            },
        })
        .unwrap();
    assert_eq!(resp.request_id, 777);
    assert_eq!(resp.outcome.request_id, Some(777));
    let resp = engine
        .find(&FindRequest {
            circuit: CircuitSource::Registered("chip"),
            pattern: PatternSource::Inline(&pattern),
            options: RequestOptions::default(),
        })
        .unwrap();
    assert_eq!(resp.request_id, 4, "minting resumes where it left off");
}

/// Journal event bytes carry no request id: two requests with
/// different ids produce equal journals. (The id lives on the outcome
/// and response envelope only.)
#[test]
fn journals_stay_id_free() {
    let main = gen::ripple_adder(6).netlist;
    let pattern = cells::full_adder();
    let engine = Engine::new();
    engine.register_circuit("chip", main);
    let run = |id: Option<u64>| {
        engine
            .find(&FindRequest {
                circuit: CircuitSource::Registered("chip"),
                pattern: PatternSource::Inline(&pattern),
                options: RequestOptions {
                    trace_events: true,
                    request_id: id,
                    ..RequestOptions::default()
                },
            })
            .unwrap()
    };
    let a = run(Some(1));
    let b = run(Some(999_999));
    assert_ne!(a.request_id, b.request_id);
    assert_eq!(a.outcome.events, b.outcome.events);
    assert_eq!(
        subgemini::events::journal_to_ndjson(a.outcome.events.as_ref().unwrap()),
        subgemini::events::journal_to_ndjson(b.outcome.events.as_ref().unwrap()),
    );
}

/// Telemetry forces metric collection internally but must strip it
/// back out when the caller didn't ask — the visible response is the
/// same either way, and effort is still reported.
#[test]
fn unrequested_metrics_are_stripped_but_effort_still_reported() {
    let main = gen::ripple_adder(4).netlist;
    let pattern = cells::full_adder();
    let engine = Engine::new();
    engine.register_circuit("chip", main);
    let quiet = engine
        .find(&FindRequest {
            circuit: CircuitSource::Registered("chip"),
            pattern: PatternSource::Inline(&pattern),
            options: RequestOptions::default(),
        })
        .unwrap();
    assert!(quiet.outcome.metrics.is_none());
    assert!(quiet.effort_spent > 0);
    let loud = engine
        .find(&FindRequest {
            circuit: CircuitSource::Registered("chip"),
            pattern: PatternSource::Inline(&pattern),
            options: RequestOptions {
                collect_metrics: true,
                ..RequestOptions::default()
            },
        })
        .unwrap();
    assert!(loud.outcome.metrics.is_some());
    assert_eq!(quiet.effort_spent, loud.effort_spent);
    // Both requests still folded prune counters into the rollup.
    let snap = engine.telemetry().snapshot();
    let find = snap.endpoint("find").unwrap();
    assert_eq!(find.requests, 2);
    assert_eq!(find.effort.count(), 2);
    assert_eq!(find.wall_ns.count(), 2);
}

#[test]
fn rollups_accumulate_per_endpoint_and_per_circuit() {
    let main = gen::ripple_adder(6).netlist;
    let pattern = cells::full_adder();
    let library = vec![cells::full_adder()];
    let engine = Engine::new();
    engine.register_circuit("chip", main.clone());
    let find_req = FindRequest {
        circuit: CircuitSource::Registered("chip"),
        pattern: PatternSource::Inline(&pattern),
        options: RequestOptions::default(),
    };
    engine.find(&find_req).unwrap();
    engine.find(&find_req).unwrap();
    engine
        .survey(&SurveyRequest {
            circuit: CircuitSource::Registered("chip"),
            library: LibrarySource::Inline(&library),
            options: RequestOptions::default(),
        })
        .unwrap();
    engine
        .explain(&ExplainRequest {
            circuit: CircuitSource::Registered("chip"),
            pattern: PatternSource::Inline(&pattern),
            options: RequestOptions::default(),
        })
        .unwrap();
    // An inline circuit folds into the endpoint rollup but not any
    // per-circuit one.
    engine
        .find(&FindRequest {
            circuit: CircuitSource::Inline(&main),
            pattern: PatternSource::Inline(&pattern),
            options: RequestOptions::default(),
        })
        .unwrap();

    let snap = engine.telemetry().snapshot();
    assert_eq!(snap.requests, 5);
    assert_eq!(snap.endpoint("find").unwrap().requests, 3);
    assert_eq!(snap.endpoint("survey").unwrap().requests, 1);
    assert_eq!(snap.endpoint("explain").unwrap().requests, 1);
    assert_eq!(snap.circuit("chip").unwrap().requests, 4);
    // Engine status carries the same snapshot.
    let status = engine.status();
    assert_eq!(status.telemetry, snap);
    // And the JSON form is well-formed with both maps present.
    let doc = snap.to_json();
    assert!(doc.get("endpoints").is_some());
    assert!(doc.get("circuits").is_some());
}

#[test]
fn truncation_reasons_are_tallied_by_name() {
    let main = gen::ripple_adder(24).netlist;
    let pattern = cells::full_adder();
    let engine = Engine::new();
    engine.register_circuit("chip", main);
    let resp = engine
        .find(&FindRequest {
            circuit: CircuitSource::Registered("chip"),
            pattern: PatternSource::Inline(&pattern),
            options: RequestOptions {
                budget: Some(WorkBudget {
                    max_effort: Some(1),
                    ..WorkBudget::default()
                }),
                ..RequestOptions::default()
            },
        })
        .unwrap();
    assert!(resp.outcome.completeness.is_truncated());
    let snap = engine.telemetry().snapshot();
    let find = snap.endpoint("find").unwrap();
    assert_eq!(find.truncated, 1);
    assert_eq!(
        find.truncation_reasons.get("effort_exhausted").copied(),
        Some(1)
    );
}
