//! Fingerprint pruning must be invisible in results and visible only
//! in the counters: on every workload, `PrunePolicy::Always` and
//! `PrunePolicy::Never` produce identical instance sets, stats, and
//! completeness (the prune is provably sound — it may only discard
//! candidates Phase II would reject anyway), and on a decoy-heavy
//! field the prune ratio is measurably nonzero. Pruned runs are also
//! pinned byte-identical across thread counts and both Phase II
//! schedulers, journal included.

use subgemini::events::journal_to_ndjson;
use subgemini::{MatchOptions, MatchOutcome, Matcher, Phase2Scheduler, PrunePolicy};
use subgemini_netlist::rng::Rng64;
use subgemini_netlist::{instantiate, DeviceType, NetId, Netlist};
use subgemini_workloads::{cells, gen};

/// Random MOS + resistor soup over `n_nets` wires with power rails,
/// following the `prop_differential.rs` generator idiom.
fn random_soup(rng: &mut Rng64, n_nets: usize, n_dev: usize) -> Netlist {
    let mut nl = Netlist::new("soup");
    let mos = nl.add_mos_types();
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let nets: Vec<NetId> = (0..n_nets.max(2))
        .map(|i| nl.net(format!("w{i}")))
        .collect();
    let (vdd, gnd) = (nl.net("vdd"), nl.net("gnd"));
    nl.mark_global(vdd);
    nl.mark_global(gnd);
    for i in 0..n_dev {
        let p = |rng: &mut Rng64| nets[rng.index(nets.len())];
        match rng.range(0, 4) {
            0 => {
                let (d, g) = (p(rng), p(rng));
                nl.add_device(format!("n{i}"), mos.nmos, &[d, gnd, g])
                    .unwrap();
            }
            1 => {
                let (d, g) = (p(rng), p(rng));
                nl.add_device(format!("p{i}"), mos.pmos, &[d, vdd, g])
                    .unwrap();
            }
            2 => {
                let (d, g, s) = (p(rng), p(rng), p(rng));
                nl.add_device(format!("m{i}"), mos.nmos, &[d, g, s])
                    .unwrap();
            }
            _ => {
                let (a, b) = (p(rng), p(rng));
                nl.add_device(format!("r{i}"), res, &[a, b]).unwrap();
            }
        }
    }
    nl
}

/// Plants `count` copies of `cell` onto random soup nets.
fn plant(rng: &mut Rng64, soup: &mut Netlist, cell: &Netlist, count: usize) {
    for k in 0..count {
        let bindings: Vec<NetId> = (0..cell.ports().len())
            .map(|_| soup.net(format!("w{}", rng.range(0, 8))))
            .collect();
        instantiate(soup, cell, &format!("u{k}"), &bindings).unwrap();
    }
}

/// The decoy field where fingerprints have real work to do: `inv` is a
/// shallow pattern (Phase I stops after one iteration, so the key
/// device's label is type-only) planted among near-miss mutants whose
/// mis-wirings the degree-free rail features can see.
fn decoy_workload() -> (Netlist, gen::Generated) {
    let pattern = cells::inv();
    let mut g = gen::near_miss_field(&pattern, 24, 0x5347_e140);
    for i in 0..8 {
        let bindings: Vec<NetId> = (0..pattern.ports().len())
            .map(|p| g.netlist.net(format!("t{i}p{p}")))
            .collect();
        g.plant(&pattern, &format!("pl{i}"), &bindings);
    }
    (pattern, g)
}

fn run(pattern: &Netlist, main: &Netlist, opts: MatchOptions) -> MatchOutcome {
    Matcher::new(pattern, main).options(opts).find_all()
}

fn with_policy(prune: PrunePolicy) -> MatchOptions {
    MatchOptions {
        prune,
        collect_metrics: true,
        ..MatchOptions::default()
    }
}

fn counter(o: &MatchOutcome, name: &str) -> u64 {
    o.metrics
        .as_ref()
        .expect("collect_metrics was set")
        .counters
        .get(name)
}

/// Asserts the full pruned-vs-unpruned contract on one workload.
fn check_prune_invisible(case: u64, pattern: &Netlist, main: &Netlist) {
    let unpruned = run(pattern, main, with_policy(PrunePolicy::Never));
    let pruned = run(pattern, main, with_policy(PrunePolicy::Always));

    assert_eq!(
        unpruned.instances, pruned.instances,
        "case {case}: pruning changed the instance list"
    );
    assert_eq!(unpruned.key, pruned.key, "case {case}: key diverged");
    assert_eq!(
        unpruned.phase1, pruned.phase1,
        "case {case}: Phase I stats diverged"
    );
    assert_eq!(
        unpruned.completeness, pruned.completeness,
        "case {case}: completeness diverged"
    );

    // Independent re-verification: every instance of the pruned run is
    // a true embedding, so a mistakenly admitted candidate can only
    // cost time, never correctness — and a mistakenly pruned one would
    // already have tripped the instance-list equality above.
    for m in &pruned.instances {
        subgemini::verify_instance(pattern, main, m, true)
            .unwrap_or_else(|e| panic!("case {case}: invalid instance survived pruning: {e}"));
    }

    // The counters partition the candidate vector: with a device key,
    // pruned + admitted covers every candidate; with a net key the
    // index never engages and both tallies stay zero.
    let pruned_n = counter(&pruned, "index.pruned_candidates");
    let admitted_n = counter(&pruned, "index.admitted_candidates");
    if pruned_n + admitted_n > 0 {
        assert_eq!(
            pruned_n + admitted_n,
            pruned.phase1.cv_size as u64,
            "case {case}: prune tallies must partition the candidate vector"
        );
    }
    assert_eq!(
        counter(&unpruned, "index.pruned_candidates"),
        0,
        "case {case}: PrunePolicy::Never must not prune"
    );
}

#[test]
fn pruning_is_invisible_on_random_planted_soups() {
    let cells = [cells::inv(), cells::nand2(), cells::nor2()];
    for case in 0..48u64 {
        let mut rng = Rng64::new(0x9b1d_3000 + case);
        let pattern = &cells[rng.index(cells.len())];
        let (n_nets, n_dev, n_plant) = (rng.range(4, 10), rng.range(0, 12), rng.range(0, 4));
        let mut soup = random_soup(&mut rng, n_nets, n_dev);
        plant(&mut rng, &mut soup, pattern, n_plant);
        check_prune_invisible(case, pattern, &soup);
    }
}

#[test]
fn pruning_is_invisible_on_library_cells_over_an_adder() {
    let adder = gen::ripple_adder(8);
    for (i, cell) in cells::library().iter().enumerate() {
        check_prune_invisible(1000 + i as u64, cell, &adder.netlist);
    }
}

#[test]
fn prune_ratio_is_nonzero_on_the_decoy_field() {
    let (pattern, g) = decoy_workload();
    let pruned = run(&pattern, &g.netlist, with_policy(PrunePolicy::Always));
    let unpruned = run(&pattern, &g.netlist, with_policy(PrunePolicy::Never));

    assert_eq!(
        pruned.count(),
        g.planted_count("inv"),
        "every planted inverter must be found despite pruning"
    );
    assert_eq!(unpruned.instances, pruned.instances);

    let pruned_n = counter(&pruned, "index.pruned_candidates");
    let admitted_n = counter(&pruned, "index.admitted_candidates");
    assert!(
        pruned_n > 0,
        "the decoy field must yield a nonzero prune ratio (cv={}, admitted={admitted_n})",
        pruned.phase1.cv_size
    );
    assert!(
        admitted_n >= pruned.count() as u64,
        "every true instance's candidate must be admitted"
    );
    assert_eq!(pruned_n + admitted_n, pruned.phase1.cv_size as u64);
    assert!(
        counter(&pruned, "index.build_ns") > 0,
        "PrunePolicy::Always on a cold run must report the index build"
    );
}

#[test]
fn pruned_runs_are_identical_across_threads_and_schedulers() {
    let (pattern, g) = decoy_workload();
    let observed = |threads: usize, scheduler: Phase2Scheduler| {
        run(
            &pattern,
            &g.netlist,
            MatchOptions {
                threads,
                scheduler,
                trace_events: true,
                ..with_policy(PrunePolicy::Always)
            },
        )
    };
    let reference = observed(1, Phase2Scheduler::WorkStealing);
    let ref_journal = journal_to_ndjson(reference.events.as_ref().expect("journal requested"));
    assert!(!ref_journal.is_empty());
    let ref_counters = (
        counter(&reference, "index.pruned_candidates"),
        counter(&reference, "index.admitted_candidates"),
    );
    assert!(ref_counters.0 > 0, "workload must actually prune");
    for scheduler in [Phase2Scheduler::WorkStealing, Phase2Scheduler::StaticChunks] {
        for threads in [1, 2, 8] {
            let o = observed(threads, scheduler);
            assert_eq!(
                reference.instances, o.instances,
                "{scheduler:?} threads {threads}: instances diverge"
            );
            assert_eq!(
                reference.phase2, o.phase2,
                "{scheduler:?} threads {threads}: Phase II stats diverge"
            );
            assert_eq!(
                ref_journal,
                journal_to_ndjson(o.events.as_ref().expect("journal requested")),
                "{scheduler:?} threads {threads}: journal diverges"
            );
            assert_eq!(
                ref_counters,
                (
                    counter(&o, "index.pruned_candidates"),
                    counter(&o, "index.admitted_candidates"),
                ),
                "{scheduler:?} threads {threads}: prune tallies diverge"
            );
        }
    }
}
