//! Cross-format pipeline: SPICE transistors in → extraction → gate
//! netlist → structural Verilog out → reparse → gate-level matching.

use subgemini::{Extractor, Matcher};
use subgemini_gemini::compare;
use subgemini_verilog::{parse as vparse, write_design, write_module, VerilogOptions};
use subgemini_workloads::{cells, gen};

fn extract_all(
    main: &subgemini_netlist::Netlist,
) -> (subgemini_netlist::Netlist, Vec<subgemini_netlist::Netlist>) {
    let mut e = Extractor::new();
    for cell in cells::library() {
        e.add_cell(cell);
    }
    let (top, report) = e.extract(main).expect("extracts");
    let used: Vec<_> = report
        .per_cell
        .iter()
        .filter(|(_, n)| *n > 0)
        .filter_map(|(name, _)| cells::by_name(name))
        .collect();
    (top, used)
}

#[test]
fn transistors_to_verilog_and_back() {
    // Adder + register slice, built at transistor level.
    let mut chip = gen::ripple_adder(3).netlist;
    let clk = chip.net("clk");
    for i in 0..3 {
        let d = chip.net(format!("s{i}"));
        let q = chip.net(format!("rq{i}"));
        subgemini_netlist::instantiate(&mut chip, &cells::dff(), &format!("r{i}"), &[d, clk, q])
            .unwrap();
    }
    let (gates, _used) = extract_all(&chip);

    // Write the gate-level netlist as one Verilog module and reparse.
    let text = write_module(&gates);
    let src = vparse(&text).unwrap_or_else(|e| panic!("writer output must parse: {e}\n{text}"));
    let back = src
        .elaborate(None, &VerilogOptions::hierarchical())
        .unwrap();
    // Composite devices survive as instances with identical counts.
    let s1 = subgemini_netlist::NetlistStats::of(&gates);
    let s2 = subgemini_netlist::NetlistStats::of(&back);
    assert_eq!(s1.devices, s2.devices);
    assert_eq!(s1.devices_by_type, s2.devices_by_type);

    // Gate-level matching on the reparsed netlist: find the dff
    // composites by pattern.
    let dffty = back.type_id("dff").expect("dff type present");
    let ty = back.device_type(dffty).clone();
    let mut pat = subgemini_netlist::Netlist::new("dff_gate");
    let pt = pat.add_type(ty).unwrap();
    let (d, c, q) = (pat.net("d"), pat.net("clk"), pat.net("q"));
    pat.mark_port(d);
    pat.mark_port(c);
    pat.mark_port(q);
    pat.add_device("g", pt, &[d, c, q]).unwrap();
    let found = Matcher::new(&pat, &back).find_all();
    assert_eq!(found.count(), 3);
}

#[test]
fn gate_level_verilog_matches_primitive_patterns() {
    // Pure gate-level design using primitives.
    let src = vparse(
        "module top(input a, b, c, output y);\n\
           wire w1, w2, w3;\n\
           nand g1(w1, a, b);\n\
           nand g2(w2, b, c);\n\
           nand g3(w3, w1, w2);\n\
           not  g4(y, w3);\n\
         endmodule\n",
    )
    .unwrap();
    let main = src.elaborate(None, &VerilogOptions::default()).unwrap();

    // Pattern: NAND followed by NOT — an AND in disguise.
    let psrc = vparse(
        "module and_shape(input a, b, output y);\n\
           wire w;\n\
           nand g1(w, a, b);\n\
           not  g2(y, w);\n\
         endmodule\n",
    )
    .unwrap();
    let pat = psrc.elaborate(None, &VerilogOptions::default()).unwrap();
    let found = Matcher::new(&pat, &main).find_all();
    assert_eq!(found.count(), 1);
    // The matched pair is g3/g4 (w3 is the only nand output feeding a
    // not with no other load).
    let names: Vec<&str> = found.instances[0]
        .device_set()
        .iter()
        .map(|&d| main.device(d).name())
        .collect();
    assert_eq!(names, vec!["g3", "g4"]);
}

#[test]
fn primitive_input_permutation_is_matching_invariant() {
    let build = |order: &str| {
        let text =
            format!("module top(input a, b, c, output y);\nnand g(y, {order});\nendmodule\n");
        vparse(&text)
            .unwrap()
            .elaborate(None, &VerilogOptions::default())
            .unwrap()
    };
    let m1 = build("a, b, c");
    let m2 = build("c, a, b");
    assert!(compare(&m1, &m2).is_isomorphic());
    let found = Matcher::new(&m1, &m2).find_all();
    assert_eq!(found.count(), 1);
}

#[test]
fn full_design_roundtrip_is_isomorphic_after_flattening() {
    let chip = gen::sram_array(2, 2).netlist;
    let (top, used) = extract_all(&chip);
    let design = write_design(&top, &used);
    // The design contains sram6t as a module of *transistors*? No — the
    // library cells are transistor netlists, whose MOS devices are not
    // Verilog primitives. write_module emits them as instances of
    // `nmos`/`pmos` modules, so provide those as behavioral-free leaf
    // modules for the parser.
    let leaves = "\
module nmos(g, s, d);\ninout g, s, d;\nendmodule\n\
module pmos(g, s, d);\ninout g, s, d;\nendmodule\n";
    let text = format!("{leaves}{design}");
    let src = vparse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    let flat = src
        .elaborate(Some(top.name()), &VerilogOptions::hierarchical())
        .unwrap();
    assert_eq!(flat.device_count(), 4); // four sram6t composites
}
