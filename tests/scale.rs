//! Scale tests: moderate sizes in the default run, chip-scale sizes
//! behind `--ignored` (run with `cargo test --release -- --ignored`).

use std::time::Instant;

use subgemini::Matcher;
use subgemini_workloads::{cells, gen};

#[test]
fn ten_thousand_device_sram() {
    // 42×42 → 1764 cells → 10584 devices.
    let sram = gen::sram_array(42, 42);
    assert!(sram.netlist.device_count() > 10_000);
    let start = Instant::now();
    let outcome = Matcher::new(&cells::sram6t(), &sram.netlist).find_all();
    assert_eq!(outcome.count(), 42 * 42);
    // Generous bound: even a debug build does this in well under a
    // minute; a regression to quadratic behavior would blow it.
    assert!(
        start.elapsed().as_secs() < 120,
        "took {:?}",
        start.elapsed()
    );
}

#[test]
fn wide_adder_with_registers() {
    let mut chip = gen::ripple_adder(64).netlist; // 1792 devices
    let clk = chip.net("clk");
    for i in 0..64 {
        let d = chip.net(format!("s{i}"));
        let q = chip.net(format!("rq{i}"));
        subgemini_netlist::instantiate(&mut chip, &cells::dff(), &format!("r{i}"), &[d, clk, q])
            .unwrap();
    }
    assert_eq!(chip.device_count(), 64 * 28 + 64 * 18);
    let fa = Matcher::new(&cells::full_adder(), &chip).find_all();
    assert_eq!(fa.count(), 64);
    let ff = Matcher::new(&cells::dff(), &chip).find_all();
    assert_eq!(ff.count(), 64);
}

/// Chip-scale run: ~100k devices. `cargo test --release -- --ignored`.
#[test]
#[ignore = "chip-scale; run with --release -- --ignored"]
fn hundred_thousand_device_fabric() {
    let sram = gen::sram_array(130, 130); // 101 400 devices
    assert!(sram.netlist.device_count() > 100_000);
    let start = Instant::now();
    let outcome = Matcher::new(&cells::sram6t(), &sram.netlist).find_all();
    assert_eq!(outcome.count(), 130 * 130);
    let per_dev = start.elapsed().as_nanos() / outcome.matched_device_total() as u128;
    println!(
        "100k fabric: {} instances in {:?} ({per_dev} ns per matched device)",
        outcome.count(),
        start.elapsed()
    );
}

/// Large extraction run behind --ignored.
#[test]
#[ignore = "chip-scale; run with --release -- --ignored"]
fn extract_large_mixed_chip() {
    let soup = gen::random_soup(77, 2000);
    let mut extractor = subgemini::Extractor::new();
    for cell in cells::library() {
        extractor.add_cell(cell);
    }
    let start = Instant::now();
    let (gates, report) = extractor.extract(&soup.netlist).unwrap();
    println!(
        "extracted {} gates from {} devices in {:?} ({} unabsorbed)",
        gates.device_count(),
        soup.netlist.device_count(),
        start.elapsed(),
        report.unabsorbed_devices
    );
    assert_eq!(report.unabsorbed_devices, 0);
}
