//! Work-stealing scheduler determinism: on a skew-heavy workload the
//! stealing and static-chunk schedulers, at every thread count, must
//! produce byte-identical instances, stats, event journals, reject
//! tallies, and truncation points — including when workers are killed
//! or stalled at the steal sites.
//!
//! The failpoint registry is process-global, so every test in this
//! binary serializes on one lock and disarms all sites on exit.

use std::sync::{Mutex, MutexGuard, OnceLock};

use subgemini::budget::failpoint::{self, Action};
use subgemini::{MatchOptions, Matcher, Phase2Scheduler, WorkBudget};
use subgemini_netlist::Netlist;
use subgemini_workloads::{cells, gen};

/// Serializes failpoint-sensitive tests and guarantees a disarmed
/// registry on both entry and exit (including panic unwinds).
struct FpSession(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FpSession {
    fn start() -> Self {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        failpoint::clear_all();
        Self(guard)
    }
}

impl Drop for FpSession {
    fn drop(&mut self) {
        failpoint::clear_all();
    }
}

/// A deliberately imbalanced field: a symmetric blob of superposed
/// pattern copies (each ~80x more expensive to verify than a planted
/// instance) clustered at the head of the candidate vector, followed
/// by cheap well-separated instances.
fn workload() -> (Netlist, Netlist) {
    let cell = cells::nand_k(6);
    let g = gen::skewed_trap_field(&cell, 4, 96);
    (cell, g.netlist)
}

fn run(pattern: &Netlist, main: &Netlist, opts: MatchOptions) -> subgemini::MatchOutcome {
    Matcher::new(pattern, main).options(opts).find_all()
}

fn opts(threads: usize, scheduler: Phase2Scheduler) -> MatchOptions {
    MatchOptions {
        threads,
        scheduler,
        ..MatchOptions::default()
    }
}

/// Every `reject.*` tally from the metrics counters, in name order.
fn reject_tallies(o: &subgemini::MatchOutcome) -> Vec<(String, u64)> {
    let m = o.metrics.as_ref().expect("metrics requested");
    let mut t: Vec<(String, u64)> = m
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("reject."))
        .map(|(name, v)| (name.to_owned(), v))
        .collect();
    t.sort();
    t
}

fn total_effort(o: &subgemini::MatchOutcome) -> u64 {
    (o.phase1.iterations
        + o.phase2.candidates_tried
        + o.phase2.passes
        + o.phase2.guesses
        + o.phase2.backtracks) as u64
}

const SCHEDULERS: [Phase2Scheduler; 2] =
    [Phase2Scheduler::WorkStealing, Phase2Scheduler::StaticChunks];

#[test]
fn schedulers_and_thread_counts_agree_on_instances_and_stats() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let reference = run(&pattern, &main, opts(1, Phase2Scheduler::WorkStealing));
    assert_eq!(reference.count(), 100, "4 blob copies + 96 planted");
    assert!(reference.completeness.is_complete());
    for scheduler in SCHEDULERS {
        for threads in [1, 2, 8] {
            let o = run(&pattern, &main, opts(threads, scheduler));
            assert_eq!(
                reference.instances, o.instances,
                "{scheduler:?} threads {threads}: instances diverge"
            );
            assert_eq!(reference.key, o.key, "{scheduler:?} threads {threads}");
            assert_eq!(
                reference.phase1, o.phase1,
                "{scheduler:?} threads {threads}"
            );
            assert_eq!(
                reference.phase2, o.phase2,
                "{scheduler:?} threads {threads}: Phase II stats diverge"
            );
            assert_eq!(
                reference.completeness, o.completeness,
                "{scheduler:?} threads {threads}"
            );
        }
    }
}

#[test]
fn journals_and_reject_tallies_are_identical_across_schedulers() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let observed = |threads, scheduler| {
        run(
            &pattern,
            &main,
            MatchOptions {
                trace_events: true,
                collect_metrics: true,
                ..opts(threads, scheduler)
            },
        )
    };
    let reference = observed(1, Phase2Scheduler::WorkStealing);
    let ref_journal = reference.events.as_ref().expect("journal requested");
    assert!(!ref_journal.events.is_empty());
    let ref_tallies = reject_tallies(&reference);
    assert!(
        ref_tallies.iter().any(|(_, v)| *v > 0),
        "the blob must produce rejects: {ref_tallies:?}"
    );
    for scheduler in SCHEDULERS {
        for threads in [2, 8] {
            let o = observed(threads, scheduler);
            assert_eq!(reference.instances, o.instances);
            assert_eq!(
                ref_journal,
                o.events.as_ref().expect("journal requested"),
                "{scheduler:?} threads {threads}: journal diverges"
            );
            assert_eq!(
                ref_tallies,
                reject_tallies(&o),
                "{scheduler:?} threads {threads}: reject tallies diverge"
            );
        }
    }
}

#[test]
fn truncation_point_is_identical_across_schedulers_and_threads() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let full = run(&pattern, &main, opts(1, Phase2Scheduler::WorkStealing));
    // A midpoint budget cuts the candidate vector partway through.
    let budget = total_effort(&full) / 2;
    let reference = run(
        &pattern,
        &main,
        MatchOptions {
            budget: Some(WorkBudget::effort(budget)),
            ..opts(1, Phase2Scheduler::WorkStealing)
        },
    );
    assert!(
        reference.completeness.is_truncated(),
        "midpoint budget must truncate"
    );
    for scheduler in SCHEDULERS {
        for threads in [1, 2, 8] {
            let o = run(
                &pattern,
                &main,
                MatchOptions {
                    budget: Some(WorkBudget::effort(budget)),
                    ..opts(threads, scheduler)
                },
            );
            assert_eq!(
                reference.instances, o.instances,
                "{scheduler:?} threads {threads}: truncated instances diverge"
            );
            assert_eq!(
                reference.completeness, o.completeness,
                "{scheduler:?} threads {threads}: truncation point diverges"
            );
        }
    }
}

#[test]
fn max_instances_stop_is_identical_across_schedulers_and_threads() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let reference = run(
        &pattern,
        &main,
        MatchOptions {
            max_instances: 10,
            ..opts(1, Phase2Scheduler::WorkStealing)
        },
    );
    assert_eq!(reference.count(), 10);
    for scheduler in SCHEDULERS {
        for threads in [2, 8] {
            let o = run(
                &pattern,
                &main,
                MatchOptions {
                    max_instances: 10,
                    ..opts(threads, scheduler)
                },
            );
            assert_eq!(
                reference.instances, o.instances,
                "{scheduler:?} threads {threads}: max_instances stop diverges"
            );
        }
    }
}

#[test]
fn stealing_happens_and_worker_accounting_stays_consistent() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let o = run(
        &pattern,
        &main,
        MatchOptions {
            collect_metrics: true,
            ..opts(8, Phase2Scheduler::WorkStealing)
        },
    );
    let m = o.metrics.as_ref().expect("metrics requested");
    assert_eq!(m.threads_requested, 8);
    assert_eq!(m.threads_resolved, 8);
    assert_eq!(m.worker_busy_ns.len(), m.threads_used);
    // Each candidate is claimed at most once (the cursor never hands
    // an index out twice), and every consumed candidate came from a
    // worker slot or a merge recomputation.
    let claims = m.counters.get("scheduler.claims");
    assert!(claims <= o.phase1.cv_size as u64);
    assert!(claims + m.counters.get("scheduler.recomputed") >= o.phase2.candidates_tried as u64);
    // The blob clusters heavy candidates into one home range, so idle
    // workers must cross chunk boundaries to drain the tail.
    assert!(
        m.counters.get("scheduler.steals") > 0,
        "skewed workload at 8 threads must provoke steals; counters: {:?}",
        m.counters.iter().collect::<Vec<_>>()
    );
    // Raced-but-discarded work is possible; invented work is not.
    assert!(o.completeness.is_complete());
}

#[test]
fn worker_death_at_steal_site_recovers_with_identical_results() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let reference = run(&pattern, &main, opts(1, Phase2Scheduler::WorkStealing));
    // Every worker dies at its first claim, leaving an abandoned-slot
    // tombstone; the merge must recompute every candidate serially and
    // still produce the full answer.
    failpoint::configure("phase2.steal", Action::KillWorker);
    for threads in [2, 8] {
        let o = run(
            &pattern,
            &main,
            opts(threads, Phase2Scheduler::WorkStealing),
        );
        assert_eq!(
            reference.instances, o.instances,
            "threads {threads}: steal-site death changed the result"
        );
        assert!(o.completeness.is_complete());
    }
    // Under a budget the truncation point is still the serial one.
    let budget = total_effort(&reference) / 2;
    let budgeted_serial = run(
        &pattern,
        &main,
        MatchOptions {
            budget: Some(WorkBudget::effort(budget)),
            ..opts(1, Phase2Scheduler::WorkStealing)
        },
    );
    assert!(budgeted_serial.completeness.is_truncated());
    for threads in [2, 8] {
        let o = run(
            &pattern,
            &main,
            MatchOptions {
                budget: Some(WorkBudget::effort(budget)),
                ..opts(threads, Phase2Scheduler::WorkStealing)
            },
        );
        assert_eq!(budgeted_serial.instances, o.instances, "threads {threads}");
        assert_eq!(
            budgeted_serial.completeness, o.completeness,
            "threads {threads}"
        );
    }
}

#[test]
fn worker_stall_at_steal_site_shifts_time_but_not_results() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let reference = run(&pattern, &main, opts(1, Phase2Scheduler::WorkStealing));
    // Stall every claim attempt: claim interleavings scramble, the
    // merged outcome must not.
    failpoint::configure("phase2.steal", Action::StallMs(1));
    for threads in [2, 8] {
        let o = run(
            &pattern,
            &main,
            opts(threads, Phase2Scheduler::WorkStealing),
        );
        assert_eq!(reference.instances, o.instances, "threads {threads}");
        assert_eq!(reference.phase2, o.phase2, "threads {threads}");
        assert!(o.completeness.is_complete());
    }
}

#[test]
fn worker_death_at_spawn_site_recovers_under_stealing_scheduler() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let reference = run(&pattern, &main, opts(1, Phase2Scheduler::WorkStealing));
    // Workers die before claiming anything at all (no tombstones, just
    // an empty board); the merge self-heals via recomputation.
    failpoint::configure("phase2.worker", Action::KillWorker);
    for scheduler in SCHEDULERS {
        for threads in [2, 8] {
            let o = run(&pattern, &main, opts(threads, scheduler));
            assert_eq!(
                reference.instances, o.instances,
                "{scheduler:?} threads {threads}: spawn-site death changed the result"
            );
            assert!(o.completeness.is_complete());
        }
    }
}

#[test]
fn threads_auto_resolves_and_reports_both_numbers() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let o = run(
        &pattern,
        &main,
        MatchOptions {
            collect_metrics: true,
            ..opts(0, Phase2Scheduler::WorkStealing)
        },
    );
    let m = o.metrics.as_ref().expect("metrics requested");
    assert_eq!(m.threads_requested, 0, "the request is echoed verbatim");
    assert!(m.threads_resolved >= 1, "auto maps to a concrete count");
    assert!(m.threads_used >= 1);
    // Auto must agree with an explicit request for the same count.
    let explicit = run(
        &pattern,
        &main,
        opts(m.threads_resolved, Phase2Scheduler::WorkStealing),
    );
    assert_eq!(o.instances, explicit.instances);
    assert_eq!(o.phase2, explicit.phase2);
}
