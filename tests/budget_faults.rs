//! Fault-injection pinning of the search governor: deterministic
//! truncation across thread counts under injected guess storms, worker
//! stalls, and worker death; byte-identical results when budgets are
//! disabled; and the dedicated pass-budget reject reason.
//!
//! The failpoint registry is process-global, so every test in this
//! binary serializes on one lock and disarms all sites on exit (even
//! when it did not arm any — a stray armed site would perturb it).

use std::sync::{Mutex, MutexGuard, OnceLock};

use subgemini::budget::failpoint::{self, Action};
use subgemini::{CancelToken, Completeness, MatchOptions, Matcher, TruncationReason, WorkBudget};
use subgemini_netlist::Netlist;
use subgemini_workloads::{cells, gen};

/// Serializes failpoint-sensitive tests and guarantees a disarmed
/// registry on both entry and exit (including panic unwinds).
struct FpSession(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FpSession {
    fn start() -> Self {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        failpoint::clear_all();
        Self(guard)
    }
}

impl Drop for FpSession {
    fn drop(&mut self) {
        failpoint::clear_all();
    }
}

fn workload() -> (Netlist, Netlist) {
    (cells::dff(), gen::shift_register(8).netlist)
}

fn run(pattern: &Netlist, main: &Netlist, opts: MatchOptions) -> subgemini::MatchOutcome {
    Matcher::new(pattern, main).options(opts).find_all()
}

/// The full-effort cost of a serial ungoverned run, reconstructed from
/// its counters: Phase I iterations plus one opening unit per tried
/// candidate plus every pass, guess, and backtrack.
fn total_effort(o: &subgemini::MatchOutcome) -> u64 {
    (o.phase1.iterations
        + o.phase2.candidates_tried
        + o.phase2.passes
        + o.phase2.guesses
        + o.phase2.backtracks) as u64
}

fn device_sets(o: &subgemini::MatchOutcome) -> Vec<Vec<subgemini_netlist::DeviceId>> {
    o.instances.iter().map(|m| m.device_set()).collect()
}

#[test]
fn effort_truncation_point_is_identical_across_thread_counts() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let full = run(&pattern, &main, MatchOptions::default());
    assert!(full.count() > 1, "workload must have several instances");
    assert!(full.completeness.is_complete());
    // A budget around the midpoint truncates partway through the CV.
    let budget = total_effort(&full) / 2;
    let reference = run(
        &pattern,
        &main,
        MatchOptions {
            budget: Some(WorkBudget::effort(budget)),
            ..MatchOptions::default()
        },
    );
    let Completeness::Truncated {
        reason,
        candidates_tried,
        candidates_skipped,
    } = reference.completeness.clone()
    else {
        panic!("midpoint budget must truncate (budget {budget})");
    };
    assert_eq!(reason, TruncationReason::EffortExhausted);
    assert!(candidates_tried > 0, "some candidates must be consumed");
    assert!(candidates_skipped > 0, "some candidates must be cut off");
    // Everything reported is genuine: a subset of the full answer.
    let full_sets = device_sets(&full);
    for set in device_sets(&reference) {
        assert!(full_sets.contains(&set), "truncated run invented {set:?}");
    }
    for threads in [2, 8] {
        let parallel = run(
            &pattern,
            &main,
            MatchOptions {
                threads,
                budget: Some(WorkBudget::effort(budget)),
                ..MatchOptions::default()
            },
        );
        assert_eq!(
            reference.instances, parallel.instances,
            "threads 1 vs {threads}: instance sets diverge under budget {budget}"
        );
        assert_eq!(
            reference.completeness, parallel.completeness,
            "threads 1 vs {threads}: truncation point diverges under budget {budget}"
        );
    }
}

#[test]
fn unbudgeted_and_unreachable_budget_runs_are_identical() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    for threads in [1, 2, 8] {
        let plain = run(
            &pattern,
            &main,
            MatchOptions {
                threads,
                ..MatchOptions::default()
            },
        );
        // An explicit-but-unlimited budget constructs no governor at
        // all; a huge budget constructs one that never fires. Both must
        // reproduce the ungoverned outcome exactly (same instances,
        // stats, and Complete outcome — MatchOutcome is Eq).
        let unlimited = run(
            &pattern,
            &main,
            MatchOptions {
                threads,
                budget: Some(WorkBudget::default()),
                ..MatchOptions::default()
            },
        );
        let huge = run(
            &pattern,
            &main,
            MatchOptions {
                threads,
                budget: Some(WorkBudget::effort(u64::MAX)),
                ..MatchOptions::default()
            },
        );
        assert_eq!(plain, unlimited, "threads {threads}: unlimited budget");
        assert_eq!(plain, huge, "threads {threads}: unreachable budget");
        assert!(huge.completeness.is_complete());
    }
}

#[test]
fn injected_guess_storm_truncates_identically_on_every_thread_count() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    // The storm burns guesses from every candidate's budget before
    // verification starts, inflating each candidate's effort by the
    // same deterministic amount on every thread count.
    failpoint::configure("phase2.candidate", Action::GuessStorm(16));
    let full = run(&pattern, &main, MatchOptions::default());
    let budget = total_effort(&full) / 2;
    let mut outcomes = Vec::new();
    for threads in [1, 2, 8] {
        outcomes.push(run(
            &pattern,
            &main,
            MatchOptions {
                threads,
                budget: Some(WorkBudget::effort(budget)),
                ..MatchOptions::default()
            },
        ));
    }
    assert!(
        outcomes[0].completeness.is_truncated(),
        "storm plus midpoint budget must truncate"
    );
    for (o, threads) in outcomes.iter().zip([1usize, 2, 8]) {
        assert_eq!(
            outcomes[0].instances, o.instances,
            "guess storm: threads 1 vs {threads} instances"
        );
        assert_eq!(
            outcomes[0].completeness, o.completeness,
            "guess storm: threads 1 vs {threads} truncation"
        );
    }
}

#[test]
fn injected_worker_stall_does_not_move_the_truncation_point() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let full = run(&pattern, &main, MatchOptions::default());
    let budget = total_effort(&full) / 2;
    // Stall every worker at startup: wall-clock shifts, effort does
    // not — the effort-budget truncation point must not move.
    failpoint::configure("phase2.worker", Action::StallMs(25));
    let mut outcomes = Vec::new();
    for threads in [1, 2, 8] {
        outcomes.push(run(
            &pattern,
            &main,
            MatchOptions {
                threads,
                budget: Some(WorkBudget::effort(budget)),
                ..MatchOptions::default()
            },
        ));
    }
    assert!(outcomes[0].completeness.is_truncated());
    for (o, threads) in outcomes.iter().zip([1usize, 2, 8]) {
        assert_eq!(
            outcomes[0].instances, o.instances,
            "stall: threads {threads}"
        );
        assert_eq!(
            outcomes[0].completeness, o.completeness,
            "stall: threads {threads}"
        );
    }
}

#[test]
fn killed_workers_fall_back_to_serial_recomputation() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let reference = run(&pattern, &main, MatchOptions::default());
    // Every worker dies before touching its chunk; the merge loop must
    // recompute every slot serially and still produce the full answer.
    failpoint::configure("phase2.worker", Action::KillWorker);
    for threads in [2, 8] {
        let survived = run(
            &pattern,
            &main,
            MatchOptions {
                threads,
                ..MatchOptions::default()
            },
        );
        assert_eq!(
            reference.instances, survived.instances,
            "threads {threads}: worker death changed the result"
        );
        assert!(survived.completeness.is_complete());
    }
    // Same story under a budget: the truncation point is decided by
    // the serial ledger, dead workers or not.
    let budget = total_effort(&reference) / 2;
    let budgeted_serial = run(
        &pattern,
        &main,
        MatchOptions {
            budget: Some(WorkBudget::effort(budget)),
            ..MatchOptions::default()
        },
    );
    for threads in [2, 8] {
        let budgeted = run(
            &pattern,
            &main,
            MatchOptions {
                threads,
                budget: Some(WorkBudget::effort(budget)),
                ..MatchOptions::default()
            },
        );
        assert_eq!(budgeted_serial.instances, budgeted.instances);
        assert_eq!(budgeted_serial.completeness, budgeted.completeness);
    }
}

#[test]
fn zero_deadline_truncates_deterministically_before_any_work() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    for threads in [1, 2, 8] {
        let o = run(
            &pattern,
            &main,
            MatchOptions {
                threads,
                budget: Some(WorkBudget::deadline(0)),
                ..MatchOptions::default()
            },
        );
        // The zero deadline fires at the very first Phase I check
        // site, before any refinement: no key, no candidates, and the
        // exact same truncated outcome on every thread count.
        assert_eq!(o.key, None);
        assert_eq!(o.count(), 0);
        assert_eq!(
            o.completeness,
            Completeness::Truncated {
                reason: TruncationReason::DeadlineExpired,
                candidates_tried: 0,
                candidates_skipped: 0,
            },
            "threads {threads}"
        );
    }
}

#[test]
fn precancelled_token_stops_phase1_and_reports_cancelled() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let token = CancelToken::new();
    token.cancel();
    let o = run(
        &pattern,
        &main,
        MatchOptions {
            cancel: Some(token),
            ..MatchOptions::default()
        },
    );
    assert_eq!(o.count(), 0);
    assert_eq!(
        o.completeness,
        Completeness::Truncated {
            reason: TruncationReason::Cancelled,
            candidates_tried: 0,
            candidates_skipped: 0,
        }
    );
    // An unfired token changes nothing.
    let armed = run(
        &pattern,
        &main,
        MatchOptions {
            cancel: Some(CancelToken::new()),
            ..MatchOptions::default()
        },
    );
    let plain = run(&pattern, &main, MatchOptions::default());
    assert_eq!(plain, armed);
}

#[test]
fn truncated_outcome_reports_budget_metrics_and_journal_event() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    let full = run(&pattern, &main, MatchOptions::default());
    let budget = total_effort(&full) / 2;
    let o = run(
        &pattern,
        &main,
        MatchOptions {
            budget: Some(WorkBudget::effort(budget)),
            collect_metrics: true,
            trace_events: true,
            ..MatchOptions::default()
        },
    );
    assert!(o.completeness.is_truncated());
    let m = o.metrics.as_ref().expect("metrics requested");
    assert_eq!(m.effort_limit, budget);
    assert!(m.effort_spent >= budget, "ledger stopped at/after the cap");
    assert!(m.counters.get("budget.effort_spent") >= budget);
    assert_eq!(m.counters.get("budget.truncations"), 1);
    assert!(m.counters.get("budget.candidates_skipped") > 0);
    let journal = o.events.as_ref().expect("journal requested");
    let truncated_events = journal
        .events
        .iter()
        .filter(|e| subgemini::events::event_name(&e.kind) == "truncated")
        .count();
    assert_eq!(truncated_events, 1, "exactly one Truncated event");
}

/// Satellite 2 regression: exhausting `max_passes_per_candidate` while
/// refinement is still progressing must surface as its own
/// `PassBudgetExhausted` reject reason, not be conflated with a stall.
#[test]
fn pass_budget_exhaustion_has_its_own_reject_reason() {
    let _fp = FpSession::start();
    let (pattern, main) = workload();
    // Sanity: with sane budgets the pattern is present.
    let sane = run(&pattern, &main, MatchOptions::default());
    assert!(sane.count() > 0);
    // One labeling pass is not enough to spread matched labels across
    // a dff, so every candidate runs out of passes mid-progress.
    let starved = run(
        &pattern,
        &main,
        MatchOptions {
            max_passes_per_candidate: 1,
            max_guesses_per_candidate: 0,
            collect_metrics: true,
            ..MatchOptions::default()
        },
    );
    assert_eq!(starved.count(), 0, "one pass cannot verify a dff");
    let m = starved.metrics.as_ref().expect("metrics requested");
    assert!(
        m.counters.get("reject.pass_budget_exhausted") > 0,
        "pass starvation must be tallied as pass_budget_exhausted, got counters: {:?}",
        m.counters.iter().collect::<Vec<_>>()
    );
}
