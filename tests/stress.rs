//! Stress and edge-case tests: self-matching, disconnected patterns,
//! deep series chains, wide symmetric fans, and guess-budget behavior.

use subgemini::{MatchOptions, Matcher};
use subgemini_netlist::{instantiate, Netlist};
use subgemini_workloads::{analog, cells};

/// Every library cell must match itself exactly once (the identity
/// instance) — a strong completeness + dedup check.
#[test]
fn every_cell_matches_itself_exactly_once() {
    let mut all = cells::library();
    all.extend(analog::analog_library());
    for cell in all {
        let outcome = Matcher::new(&cell, &cell).find_all();
        assert_eq!(
            outcome.count(),
            1,
            "{} should contain exactly itself (cv={})",
            cell.name(),
            outcome.phase1.cv_size
        );
        // And the mapping must be verified structurally already; check
        // it maps onto the full device set.
        assert_eq!(outcome.instances[0].device_set().len(), cell.device_count());
    }
}

/// A deliberately disconnected pattern: two separate inverters. The
/// label spreading cannot bridge components, so the recursion fallback
/// must anchor the second component.
#[test]
fn disconnected_pattern_matches_via_fallback() {
    let mut pat = Netlist::new("two_islands");
    let mos = pat.add_mos_types();
    for i in 0..2 {
        let a = pat.net(format!("a{i}"));
        let y = pat.net(format!("y{i}"));
        let vdd = pat.net("vdd");
        let gnd = pat.net("gnd");
        pat.mark_global(vdd);
        pat.mark_global(gnd);
        pat.mark_port(a);
        pat.mark_port(y);
        pat.add_device(format!("p{i}"), mos.pmos, &[a, vdd, y])
            .unwrap();
        pat.add_device(format!("n{i}"), mos.nmos, &[a, gnd, y])
            .unwrap();
    }
    // Main: three disconnected inverters -> C(3,2) island assignments,
    // but instances dedup by device set: 3 distinct pairs.
    let inv = cells::inv();
    let mut main = Netlist::new("three_islands");
    for i in 0..3 {
        let a = main.net(format!("ma{i}"));
        let y = main.net(format!("my{i}"));
        instantiate(&mut main, &inv, &format!("u{i}"), &[a, y]).unwrap();
    }
    let outcome = Matcher::new(&pat, &main).find_all();
    // SubGemini (like the paper) reports one instance per candidate key
    // image. Every key image is realized — all 3 pmos devices anchor an
    // instance — but two of the resulting device sets coincide (island
    // pairs {u0,u1} and {u1,u0}), so 2 distinct sets remain. For
    // connected patterns each key image implies a distinct set, so
    // nothing is ever merged there.
    assert_eq!(outcome.phase2.candidates_tried, 3);
    assert_eq!(
        outcome.phase2.false_candidates, 0,
        "every key image verifies"
    );
    assert_eq!(outcome.count(), 2, "{:?}", outcome.phase2);
}

/// A 24-high series transistor stack: long anonymous chains exercise
/// many relabeling passes and the interchangeable-end ambiguity.
#[test]
fn deep_series_stack() {
    let build = |name: &str, height: usize, extra: bool| {
        let mut nl = Netlist::new(name);
        let mos = nl.add_mos_types();
        let g = nl.net("g");
        nl.mark_port(g);
        let mut prev = nl.net("top");
        nl.mark_port(prev);
        for i in 0..height {
            let next = if i + 1 == height {
                let b = nl.net("bot");
                nl.mark_port(b);
                b
            } else {
                nl.net(format!("m{i}"))
            };
            nl.add_device(format!("t{i}"), mos.nmos, &[g, prev, next])
                .unwrap();
            prev = next;
        }
        if extra {
            // Decorate the main circuit so it is a strict supergraph.
            let x = nl.net("x");
            let y = nl.net("top");
            nl.add_device("deco", mos.pmos, &[x, y, x]).unwrap();
        }
        nl
    };
    let pat = build("stack", 24, false);
    let main = build("bigger", 24, true);
    let outcome = Matcher::new(&pat, &main).find_all();
    assert_eq!(outcome.count(), 1, "{:?}", outcome.phase2);
}

/// 12 interchangeable parallel transistors matching into 12: a 12!-size
/// automorphism space that must be resolved with guesses linear in the
/// count, not factorial.
#[test]
fn wide_symmetric_fan_resolves_without_blowup() {
    let build = |name: &str, n: usize| {
        let mut nl = Netlist::new(name);
        let mos = nl.add_mos_types();
        let (g, s, d) = (nl.net("g"), nl.net("s"), nl.net("d"));
        nl.mark_port(g);
        nl.mark_port(s);
        nl.mark_port(d);
        for i in 0..n {
            nl.add_device(format!("t{i}"), mos.nmos, &[g, s, d])
                .unwrap();
        }
        nl
    };
    let pat = build("fan", 12);
    let main = build("fan2", 12);
    let outcome = Matcher::new(&pat, &main)
        .options(MatchOptions {
            max_guesses_per_candidate: 4096,
            ..MatchOptions::default()
        })
        .find_all();
    assert_eq!(outcome.count(), 1);
    assert!(
        outcome.phase2.guesses <= 200,
        "guesses exploded: {:?}",
        outcome.phase2
    );
}

/// Pattern in a main circuit that contains many near-misses: NAND3s
/// everywhere, NAND2 pattern must reject all of them.
#[test]
fn near_misses_are_rejected() {
    let nand3 = cells::nand3();
    let mut main = Netlist::new("forest");
    for i in 0..10 {
        let a = main.net(format!("a{i}"));
        let b = main.net(format!("b{i}"));
        let c = main.net(format!("c{i}"));
        let y = main.net(format!("y{i}"));
        instantiate(&mut main, &nand3, &format!("g{i}"), &[a, b, c, y]).unwrap();
    }
    let outcome = Matcher::new(&cells::nand2(), &main).find_all();
    assert_eq!(outcome.count(), 0);
    // Phase I should already have pruned hard — the nand2's internal
    // `mid` net (nmos drain-drain, degree 2) does exist in nand3 stacks,
    // so some candidates survive to Phase II; all must die there.
    assert_eq!(
        outcome.phase2.false_candidates,
        outcome.phase2.candidates_tried
    );
}

/// Matching must be insensitive to the seed (only label values change,
/// not outcomes).
#[test]
fn seed_does_not_change_results() {
    let chip = subgemini_workloads::gen::random_soup(5, 40);
    let cell = cells::xor2();
    let a = Matcher::new(&cell, &chip.netlist)
        .options(MatchOptions {
            seed: 1,
            ..MatchOptions::default()
        })
        .find_all();
    let b = Matcher::new(&cell, &chip.netlist)
        .options(MatchOptions {
            seed: 0xdead_beef,
            ..MatchOptions::default()
        })
        .find_all();
    let sets = |o: &subgemini::MatchOutcome| {
        let mut v: Vec<_> = o.instances.iter().map(|m| m.device_set()).collect();
        v.sort();
        v
    };
    assert_eq!(sets(&a), sets(&b));
}

/// A pattern that is its own main circuit with heavy internal symmetry:
/// the SRAM cell's cross-coupled inverters.
#[test]
fn cross_coupled_structure_self_match() {
    let sram = cells::sram6t();
    let outcome = Matcher::new(&sram, &sram).find_all();
    assert_eq!(outcome.count(), 1);
}

/// Ring oscillators: rotational symmetry with no ports at all in the
/// pattern (exercises the Phase I stabilization guard end to end).
#[test]
fn ring_in_ring() {
    let ring = |name: &str, n: usize| {
        let inv = cells::inv();
        let mut nl = Netlist::new(name);
        let nets: Vec<_> = (0..n).map(|i| nl.net(format!("r{i}"))).collect();
        for i in 0..n {
            instantiate(
                &mut nl,
                &inv,
                &format!("u{i}"),
                &[nets[i], nets[(i + 1) % n]],
            )
            .unwrap();
        }
        nl
    };
    // A 5-ring inside a disjoint union of a 5-ring and a 7-ring.
    let pat = ring("r5", 5);
    let mut main = ring("m5", 5);
    let seven = ring("m7", 7);
    // Merge: stamp the 7-ring into main.
    for d in seven.device_ids() {
        let dev = seven.device(d);
        let ty = main
            .add_type(seven.device_type(dev.type_id()).clone())
            .unwrap();
        let pins: Vec<_> = dev
            .pins()
            .iter()
            .map(|&nn| main.net(format!("x_{}", seven.net_ref(nn).name())))
            .collect();
        for &nn in dev.pins() {
            if seven.net_ref(nn).is_global() {
                let id = main.net(format!("x_{}", seven.net_ref(nn).name()));
                main.mark_global(id);
            }
        }
        main.add_device(format!("x_{}", dev.name()), ty, &pins)
            .unwrap();
    }
    // vdd/gnd in the 7-ring copy got x_ prefixes; unify them with the
    // 5-ring's rails is NOT done — so the pattern's vdd/gnd only exist
    // once. The 7-ring copy uses x_vdd/x_gnd and cannot host the
    // pattern (whose rails must map to vdd/gnd by name).
    let outcome = Matcher::new(&pat, &main).find_all();
    // Rotations dedup to one instance per device set; the 5-ring is one
    // set.
    assert_eq!(outcome.count(), 1, "{:?}", outcome.phase2);
}

/// Wide-input gates: generic k-NANDs match across k and never
/// cross-match different arities.
#[test]
fn wide_gate_arity_discrimination() {
    use subgemini_workloads::cells::nand_k;
    let mut chip = Netlist::new("wide");
    for k in [2usize, 4, 6] {
        for copy in 0..3 {
            let cell = nand_k(k);
            let bindings: Vec<_> = (0..=k)
                .map(|p| chip.net(format!("w{k}_{copy}_{p}")))
                .collect();
            instantiate(&mut chip, &cell, &format!("g{k}_{copy}"), &bindings).unwrap();
        }
    }
    for k in [2usize, 3, 4, 5, 6] {
        let found = Matcher::new(&nand_k(k), &chip).find_all();
        let expect = if matches!(k, 2 | 4 | 6) { 3 } else { 0 };
        assert_eq!(found.count(), expect, "nand_k({k})");
    }
}

/// A clock-tree-like mesh pathological for guess budgets: rows of
/// interchangeable parallel transistors all gated by one shared clock
/// net, so every candidate burns its entire (deliberately tiny)
/// `max_guesses_per_candidate` before failing. A small effort budget
/// must still terminate promptly and report a deterministic truncation
/// with work left on the table.
#[test]
fn clock_mesh_exhausts_guess_budget_and_truncates_deterministically() {
    use subgemini::{Completeness, WorkBudget};
    let build = |name: &str, rows: usize, k: usize| {
        let mut nl = Netlist::new(name);
        let mos = nl.add_mos_types();
        let clk = nl.net("clk");
        nl.mark_port(clk);
        for r in 0..rows {
            let s = nl.net(format!("s{r}"));
            let d = nl.net(format!("d{r}"));
            nl.mark_port(s);
            nl.mark_port(d);
            for i in 0..k {
                nl.add_device(format!("t{r}_{i}"), mos.nmos, &[clk, s, d])
                    .unwrap();
            }
        }
        nl
    };
    let pat = build("row", 1, 8);
    let main = build("mesh", 6, 8);
    // Sanity: with a generous guess budget every row is found.
    let full = Matcher::new(&pat, &main)
        .options(MatchOptions {
            max_guesses_per_candidate: 4096,
            ..MatchOptions::default()
        })
        .find_all();
    assert_eq!(full.count(), 6, "{:?}", full.phase2);
    // Starve the per-candidate guess budget so every candidate
    // exhausts it, then cap total effort low enough that the run is
    // cut off with candidates still pending.
    let opts = |threads: usize| MatchOptions {
        threads,
        max_guesses_per_candidate: 4,
        budget: Some(WorkBudget::effort(40)),
        collect_metrics: true,
        ..MatchOptions::default()
    };
    let reference = Matcher::new(&pat, &main).options(opts(1)).find_all();
    let Completeness::Truncated {
        candidates_skipped, ..
    } = reference.completeness.clone()
    else {
        panic!("a 40-unit budget must truncate: {:?}", reference.phase2);
    };
    assert!(candidates_skipped > 0, "work must be left on the table");
    let m = reference.metrics.as_ref().expect("metrics requested");
    assert!(
        m.counters.get("reject.budget_exhausted") > 0,
        "starved candidates must be rejected for guess exhaustion, got {:?}",
        m.counters.iter().collect::<Vec<_>>()
    );
    for threads in [2, 8] {
        let parallel = Matcher::new(&pat, &main).options(opts(threads)).find_all();
        assert_eq!(reference.instances, parallel.instances, "threads {threads}");
        assert_eq!(
            reference.completeness, parallel.completeness,
            "threads {threads}"
        );
    }
}
