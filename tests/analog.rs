//! Technology-independence tests: analog circuits match with exactly
//! the same machinery as digital CMOS (paper §I).

use subgemini::{Matcher, RuleChecker};
use subgemini_workloads::analog;

#[test]
fn ota_contains_its_building_blocks() {
    let ota = analog::ota5t();
    // A 5T OTA contains one PMOS current mirror...
    let mirrors = Matcher::new(&analog::pmos_mirror(), &ota).find_all();
    assert_eq!(mirrors.count(), 1);
    // ...and one differential pair.
    let pairs = Matcher::new(&analog::diff_pair(), &ota).find_all();
    assert_eq!(pairs.count(), 1);
    // But no NMOS mirror (the tail is a single device).
    let nmirror = Matcher::new(&analog::nmos_mirror(), &ota).find_all();
    assert_eq!(nmirror.count(), 0);
}

#[test]
fn opamp_contains_ota_first_stage_blocks() {
    let amp = analog::two_stage_opamp();
    let mirrors = Matcher::new(&analog::pmos_mirror(), &amp).find_all();
    assert_eq!(mirrors.count(), 1);
    let pairs = Matcher::new(&analog::diff_pair(), &amp).find_all();
    assert_eq!(pairs.count(), 1);
    let filters = Matcher::new(&analog::rc_lowpass(), &amp).find_all();
    assert_eq!(filters.count(), 0, "the Miller cap is not an RC filter");
}

#[test]
fn mixed_signal_channels_are_all_found() {
    let chip = analog::mixed_signal_chip(7, 5);
    for (cell, expect) in [
        (analog::two_stage_opamp(), 5),
        (analog::rc_lowpass(), 5),
        (analog::pmos_mirror(), 5), // one inside each opamp
        (analog::diff_pair(), 5),
    ] {
        let found = Matcher::new(&cell, &chip.netlist).find_all();
        assert_eq!(found.count(), expect, "{}", cell.name());
    }
}

#[test]
fn bjt_patterns_match_in_bjt_circuits() {
    // Build a BJT output stage containing a Darlington.
    let mut chip = subgemini_netlist::Netlist::new("output_stage");
    let darl = analog::darlington();
    let (b, c, e) = (chip.net("drive"), chip.net("rail"), chip.net("speaker"));
    subgemini_netlist::instantiate(&mut chip, &darl, "u1", &[b, c, e]).unwrap();
    // Extra lone transistor for noise.
    let npn = chip.type_id("npn").unwrap();
    let x = chip.net("x");
    chip.add_device("q9", npn, &[c, x, e]).unwrap();
    let found = Matcher::new(&darl, &chip).find_all();
    assert_eq!(found.count(), 1);
}

#[test]
fn analog_rule_checking_flags_floating_diode_connections() {
    // Rule: diode-connected NMOS to ground (valid in mirrors but
    // flagged for review outside them — the rule simply *finds* them).
    let mut rule = subgemini_netlist::Netlist::new("diode_nmos");
    let mos = rule.add_mos_types();
    let (d, gnd) = (rule.net("d"), rule.net("gnd"));
    rule.mark_port(d);
    rule.mark_global(gnd);
    rule.add_device("m", mos.nmos, &[d, gnd, d]).unwrap();

    let mut checker = RuleChecker::new();
    checker.add_rule("diode-nmos", "diode-connected nmos to ground", rule);
    let chip = analog::mixed_signal_chip(3, 2);
    // The opamps' mirrors are PMOS-side, so no NMOS hits expected here…
    let violations = checker.check(&chip.netlist);
    assert!(violations.is_empty());
    // …but an NMOS mirror input is exactly this construct.
    let mirror = analog::nmos_mirror();
    let violations = checker.check(&mirror);
    assert_eq!(violations.len(), 1);
}

#[test]
fn cascode_mirror_does_not_false_match_simple_mirror() {
    // The plain mirror requires its input net to be *internal*-free:
    // both its nets are ports, so it CAN sit inside the cascode — check
    // what the semantics actually give and pin it down.
    let cascode = analog::cascode_mirror();
    let simple = analog::nmos_mirror();
    let found = Matcher::new(&simple, &cascode).find_all();
    // The bottom pair (m1, m2) of the cascode is a genuine simple
    // mirror whose "iout" is the internal cascode node: both pattern
    // nets are external, so this is a true structural instance.
    assert_eq!(found.count(), 1);
    let set: Vec<&str> = found.instances[0]
        .device_set()
        .iter()
        .map(|&d| cascode.device(d).name())
        .collect();
    assert_eq!(set, vec!["m1", "m2"]);
}
