//! Differential oracle: `subgemini::find_all` against the exhaustive
//! DFS baseline on random device soups.
//!
//! SubGemini reports one instance per verified key image (the paper's
//! enumeration semantics), while the baseline enumerates every
//! overlapping device set, so the reported lists are not expected to
//! coincide. The exact contract checked here is:
//!
//! * **soundness** — every SubGemini device set is also found by the
//!   baseline (and independently re-verifies);
//! * **key-image completeness** — with automorphic dedup off, every
//!   true image of the key vertex either anchors a reported instance or
//!   lies inside one;
//! * **emptiness agreement** — the two matchers agree on whether any
//!   instance exists at all.

use subgemini::Matcher;
use subgemini_baseline::{find_all as dfs_find_all, DfsOptions};
use subgemini_netlist::rng::Rng64;
use subgemini_netlist::{instantiate, DeviceId, DeviceType, NetId, Netlist, Vertex};

/// Random MOS + resistor soup over `n_nets` wires with power rails.
fn random_soup(rng: &mut Rng64, n_nets: usize, n_dev: usize) -> Netlist {
    let mut nl = Netlist::new("soup");
    let mos = nl.add_mos_types();
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let nets: Vec<NetId> = (0..n_nets.max(2))
        .map(|i| nl.net(format!("w{i}")))
        .collect();
    let (vdd, gnd) = (nl.net("vdd"), nl.net("gnd"));
    nl.mark_global(vdd);
    nl.mark_global(gnd);
    for i in 0..n_dev {
        let p = |rng: &mut Rng64| nets[rng.index(nets.len())];
        match rng.range(0, 4) {
            0 => {
                let (d, g) = (p(rng), p(rng));
                nl.add_device(format!("n{i}"), mos.nmos, &[d, gnd, g])
                    .unwrap();
            }
            1 => {
                let (d, g) = (p(rng), p(rng));
                nl.add_device(format!("p{i}"), mos.pmos, &[d, vdd, g])
                    .unwrap();
            }
            2 => {
                let (d, g, s) = (p(rng), p(rng), p(rng));
                nl.add_device(format!("m{i}"), mos.nmos, &[d, g, s])
                    .unwrap();
            }
            _ => {
                let (a, b) = (p(rng), p(rng));
                nl.add_device(format!("r{i}"), res, &[a, b]).unwrap();
            }
        }
    }
    nl
}

/// Plants `count` copies of `cell` onto random soup nets.
fn plant(rng: &mut Rng64, soup: &mut Netlist, cell: &Netlist, count: usize) {
    for k in 0..count {
        let bindings: Vec<NetId> = (0..cell.ports().len())
            .map(|_| soup.net(format!("w{}", rng.range(0, 8))))
            .collect();
        instantiate(soup, cell, &format!("u{k}"), &bindings).unwrap();
    }
}

fn check_differential(case: u64, pattern: &Netlist, main: &Netlist) {
    let outcome = Matcher::new(pattern, main).find_all();
    let dfs = dfs_find_all(pattern, main, &DfsOptions::default());
    if dfs.budget_exhausted {
        return; // oracle gave up; nothing to compare against
    }
    let oracle_sets: Vec<Vec<DeviceId>> = dfs.instances.iter().map(|m| m.device_set()).collect();

    // Soundness: reported sets are true instances per the oracle and
    // per the independent structural verifier.
    for m in &outcome.instances {
        assert!(
            oracle_sets.contains(&m.device_set()),
            "case {case}: set {:?} not found by the oracle",
            m.device_set()
        );
        subgemini::verify_instance(pattern, main, m, true)
            .unwrap_or_else(|e| panic!("case {case}: invalid instance: {e}"));
    }

    // Emptiness agreement.
    assert_eq!(
        outcome.count() == 0,
        oracle_sets.is_empty(),
        "case {case}: found {} but oracle found {}",
        outcome.count(),
        oracle_sets.len()
    );

    // Key-image completeness against the dedup-off oracle.
    let Some(key) = outcome.key else { return };
    let full = dfs_find_all(
        pattern,
        main,
        &DfsOptions {
            dedup_automorphs: false,
            ..DfsOptions::default()
        },
    );
    if full.budget_exhausted {
        return;
    }
    let true_images: Vec<Vertex> = match key {
        Vertex::Device(d) => full
            .images_of_device(d)
            .into_iter()
            .map(Vertex::Device)
            .collect(),
        Vertex::Net(n) => full.images_of_net(n).into_iter().map(Vertex::Net).collect(),
    };
    for img in &true_images {
        let covered = outcome.key_images().contains(img)
            || outcome.instances.iter().any(|m| match *img {
                Vertex::Device(d) => m.devices.contains(&d),
                Vertex::Net(n) => m.nets.contains(&n),
            });
        assert!(
            covered,
            "case {case}: true key image {img:?} unreported and uncovered"
        );
    }
}

#[test]
fn library_cells_against_planted_soups() {
    let cells = [
        subgemini_workloads::cells::inv(),
        subgemini_workloads::cells::nand2(),
        subgemini_workloads::cells::nor2(),
        subgemini_workloads::analog::nmos_mirror(),
    ];
    for case in 0..48u64 {
        let mut rng = Rng64::new(0xd1ff_1000 + case);
        let cell = &cells[rng.index(cells.len())];
        let (n_nets, n_dev, n_plant) = (rng.range(4, 10), rng.range(0, 12), rng.range(0, 4));
        let mut soup = random_soup(&mut rng, n_nets, n_dev);
        plant(&mut rng, &mut soup, cell, n_plant);
        check_differential(case, cell, &soup);
    }
}

#[test]
fn carved_patterns_against_pure_soups() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0xd1ff_2000 + case);
        let (n_nets, n_dev) = (rng.range(3, 8), rng.range(3, 14));
        let soup = random_soup(&mut rng, n_nets, n_dev);
        // Carve a connected region as the pattern (as in prop_carved,
        // but here the oracle comparison is the point).
        let start = DeviceId::new(rng.index(soup.device_count()) as u32);
        let target = rng.range(1, 5);
        let mut selected = vec![start];
        let mut frontier = vec![start];
        while selected.len() < target {
            let Some(d) = frontier.pop() else { break };
            for &n in soup.device(d).pins() {
                if soup.net_ref(n).is_global() {
                    continue;
                }
                for pin in soup.net_ref(n).pins() {
                    if !selected.contains(&pin.device) && selected.len() < target {
                        selected.push(pin.device);
                        frontier.push(pin.device);
                    }
                }
            }
        }
        let pattern = soup.subnetlist("carved", &selected);
        if pattern.validate().is_err() {
            continue;
        }
        check_differential(case, &pattern, &soup);
    }
}
