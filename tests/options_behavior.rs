//! Behavioral tests for the matcher's safety valves and option
//! combinations.

use subgemini::{MatchOptions, Matcher};
use subgemini_netlist::{instantiate, Netlist};
use subgemini_workloads::{cells, gen};

/// A heavily symmetric workload that forces guessing.
fn symmetric_fan(n: usize) -> Netlist {
    let mut nl = Netlist::new("fan");
    let mos = nl.add_mos_types();
    let (g, s, d) = (nl.net("g"), nl.net("s"), nl.net("d"));
    nl.mark_port(g);
    nl.mark_port(s);
    nl.mark_port(d);
    for i in 0..n {
        nl.add_device(format!("t{i}"), mos.nmos, &[g, s, d])
            .unwrap();
    }
    nl
}

#[test]
fn guess_budget_exhaustion_fails_cleanly() {
    // An 8-fold symmetric pattern with a 1-guess budget cannot finish,
    // but must terminate and report zero instances — never hang or
    // panic.
    let pat = symmetric_fan(8);
    let main = symmetric_fan(8);
    let outcome = Matcher::new(&pat, &main)
        .options(MatchOptions {
            max_guesses_per_candidate: 1,
            ..MatchOptions::default()
        })
        .find_all();
    assert_eq!(outcome.count(), 0);
    assert!(outcome.phase2.candidates_tried >= 1);
}

#[test]
fn tiny_pass_budget_still_terminates() {
    // max_passes=1 forces a stall after every single pass; the guess
    // machinery must still drive matching to completion (or clean
    // failure) on a simple chain.
    let chip = gen::inverter_chain(4).netlist;
    let outcome = Matcher::new(&cells::inv(), &chip)
        .options(MatchOptions {
            max_passes_per_candidate: 1,
            max_guesses_per_candidate: 10_000,
            ..MatchOptions::default()
        })
        .find_all();
    assert_eq!(outcome.count(), 4, "{:?}", outcome.phase2);
}

#[test]
fn option_combinations_do_not_interfere() {
    let chip = gen::random_soup(11, 30);
    let cell = cells::nand2();
    let reference = Matcher::new(&cell, &chip.netlist).find_all();
    // ignore_globals + threads + first
    let combo = Matcher::new(&cell, &chip.netlist)
        .options(MatchOptions {
            threads: 3,
            max_instances: 1,
            ..MatchOptions::default()
        })
        .find_all();
    assert_eq!(combo.count(), reference.count().min(1));
    // Different seeds with claiming.
    for seed in [3u64, 9999] {
        let o = Matcher::new(&cell, &chip.netlist)
            .options(MatchOptions {
                seed,
                ..MatchOptions::extraction()
            })
            .find_all();
        assert_eq!(o.count(), reference.count(), "seed {seed}");
    }
}

#[test]
fn find_first_is_prefix_of_find_all() {
    let chip = gen::ripple_adder(5).netlist;
    let fa = cells::full_adder();
    let all = Matcher::new(&fa, &chip).find_all();
    let first = Matcher::new(&fa, &chip).find_first().expect("exists");
    assert!(all.instances.contains(&first));
}

#[test]
fn extraction_options_respected_through_extractor() {
    // A custom seed via set_options must not change extraction results.
    let chip = gen::ripple_adder(3).netlist;
    let run = |seed: u64| {
        let mut e = subgemini::Extractor::new();
        e.add_cell(cells::full_adder());
        e.set_options(MatchOptions {
            seed,
            ..MatchOptions::extraction()
        });
        let (gates, report) = e.extract(&chip).unwrap();
        (gates.device_count(), report.count_of("full_adder"))
    };
    assert_eq!(run(1), run(0xfeed));
}

#[test]
fn port_marking_order_is_irrelevant() {
    // The same cell with ports declared in a different order matches
    // identically (port order matters for instantiation, not matching).
    let build = |swap: bool| {
        let mut inv = Netlist::new("inv");
        let mos = inv.add_mos_types();
        let (a, y) = (inv.net("a"), inv.net("y"));
        let (vdd, gnd) = (inv.net("vdd"), inv.net("gnd"));
        if swap {
            inv.mark_port(y);
            inv.mark_port(a);
        } else {
            inv.mark_port(a);
            inv.mark_port(y);
        }
        inv.mark_global(vdd);
        inv.mark_global(gnd);
        inv.add_device("mp", mos.pmos, &[a, vdd, y]).unwrap();
        inv.add_device("mn", mos.nmos, &[a, gnd, y]).unwrap();
        inv
    };
    let mut chip = Netlist::new("chip");
    let (i, o) = (chip.net("in"), chip.net("out"));
    instantiate(&mut chip, &build(false), "u1", &[i, o]).unwrap();
    let a = Matcher::new(&build(false), &chip).find_all();
    let b = Matcher::new(&build(true), &chip).find_all();
    assert_eq!(a.count(), b.count());
    assert_eq!(a.instances[0].device_set(), b.instances[0].device_set());
}

/// §I: tree-based technology mappers cannot handle feedback; the
/// subgraph-isomorphism mapper covers a ring (pure feedback) exactly.
#[test]
fn techmap_covers_feedback_loops() {
    use subgemini::TechMapper;
    // A 6-inverter ring: no tree decomposition exists.
    let inv = cells::inv();
    let mut ring = Netlist::new("ring6");
    let nets: Vec<_> = (0..6).map(|i| ring.net(format!("n{i}"))).collect();
    for i in 0..6 {
        instantiate(
            &mut ring,
            &inv,
            &format!("u{i}"),
            &[nets[i], nets[(i + 1) % 6]],
        )
        .unwrap();
    }
    let mut mapper = TechMapper::new();
    mapper.add_cell(cells::inv(), 1.0);
    mapper.add_cell(cells::buf(), 1.5);
    let exact = mapper.map_exact(&ring, 1_000_000).expect("ring coverable");
    assert!(exact.is_complete());
    // 3 bufs (4.5) beat 6 invs (6.0) and any mix.
    assert!(
        (exact.total_cost - 4.5).abs() < 1e-9,
        "{}",
        exact.total_cost
    );
    assert_eq!(exact.count_of("buf"), 3);
}

/// Reconvergent fanout (the other §I tree-mapper blind spot): a NAND
/// whose two inputs derive from the same source still maps.
#[test]
fn techmap_covers_reconvergent_fanout() {
    use subgemini::TechMapper;
    let mut chip = Netlist::new("reconv");
    let (src, w1, w2, out) = (
        chip.net("src"),
        chip.net("w1"),
        chip.net("w2"),
        chip.net("out"),
    );
    instantiate(&mut chip, &cells::inv(), "i1", &[src, w1]).unwrap();
    instantiate(&mut chip, &cells::inv(), "i2", &[src, w2]).unwrap();
    instantiate(&mut chip, &cells::nand2(), "g", &[w1, w2, out]).unwrap();
    let mut mapper = TechMapper::new();
    mapper.add_cell(cells::inv(), 1.0);
    mapper.add_cell(cells::nand2(), 2.0);
    let cover = mapper.map_greedy(&chip);
    assert!(cover.is_complete());
    assert_eq!(cover.count_of("inv"), 2);
    assert_eq!(cover.count_of("nand2"), 1);
}
