//! The strongest completeness property: carve a random connected
//! region out of a random circuit, use it as the pattern, and the
//! matcher must find at least the carved instance (and every reported
//! instance must verify). Cases come from a seeded internal PRNG so
//! every run is reproducible.

use subgemini::Matcher;
use subgemini_netlist::rng::Rng64;
use subgemini_netlist::{DeviceId, DeviceType, NetId, Netlist};

/// Random circuit over MOS + resistor types with power rails.
fn random_circuit(n_nets: usize, devices: &[(u8, [usize; 3])]) -> Netlist {
    let mut nl = Netlist::new("g");
    let mos = nl.add_mos_types();
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let nets: Vec<NetId> = (0..n_nets.max(2))
        .map(|i| nl.net(format!("w{i}")))
        .collect();
    let (vdd, gnd) = (nl.net("vdd"), nl.net("gnd"));
    nl.mark_global(vdd);
    nl.mark_global(gnd);
    for (i, (kind, pins)) in devices.iter().enumerate() {
        let p = |k: usize| nets[pins[k] % nets.len()];
        match kind % 4 {
            0 => {
                nl.add_device(format!("n{i}"), mos.nmos, &[p(0), gnd, p(2)])
                    .unwrap();
            }
            1 => {
                nl.add_device(format!("p{i}"), mos.pmos, &[p(0), vdd, p(2)])
                    .unwrap();
            }
            2 => {
                nl.add_device(format!("m{i}"), mos.nmos, &[p(0), p(1), p(2)])
                    .unwrap();
            }
            _ => {
                nl.add_device(format!("r{i}"), res, &[p(0), p(1)]).unwrap();
            }
        }
    }
    nl
}

/// Grows a connected device region of up to `target` devices starting
/// from `seed`, walking through non-global nets.
fn carve_region(nl: &Netlist, seed: usize, target: usize) -> Vec<DeviceId> {
    let start = DeviceId::new((seed % nl.device_count()) as u32);
    let mut selected = vec![start];
    let mut frontier = vec![start];
    while selected.len() < target {
        let Some(d) = frontier.pop() else { break };
        for &n in nl.device(d).pins() {
            if nl.net_ref(n).is_global() {
                continue;
            }
            for pin in nl.net_ref(n).pins() {
                if !selected.contains(&pin.device) && selected.len() < target {
                    selected.push(pin.device);
                    frontier.push(pin.device);
                }
            }
        }
    }
    selected
}

#[test]
fn carved_regions_are_always_found() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(0xca4e_d000 + case);
        let n_nets = rng.range(2, 9);
        let n_dev = rng.range(2, 14);
        let devices: Vec<(u8, [usize; 3])> = (0..n_dev)
            .map(|_| {
                (
                    rng.range(0, 4) as u8,
                    [
                        rng.next_u64() as usize,
                        rng.next_u64() as usize,
                        rng.next_u64() as usize,
                    ],
                )
            })
            .collect();
        let seed = rng.next_u64() as usize;
        let target = rng.range(1, 6);
        let g = random_circuit(n_nets, &devices);
        let region = carve_region(&g, seed, target);
        let pattern = g.subnetlist("carved", &region);
        pattern
            .validate()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let outcome = Matcher::new(&pattern, &g).find_all();
        assert!(
            outcome.count() >= 1,
            "case {case}: carved {} devices, found none (phase1 {:?}, phase2 {:?})",
            region.len(),
            outcome.phase1,
            outcome.phase2
        );
        // Cross-validate against the exhaustive oracle with automorphic
        // dedup OFF, so it reports the *exact* set of valid key images.
        // The precisely guaranteed relationship is:
        //   (a) soundness — every SubGemini key image is a true image;
        //   (b) coverage — every true key image either anchors a
        //       reported instance, or lies inside one (its own instance
        //       was merged with an automorphic twin's device set).
        if let Some(key) = outcome.key {
            use subgemini_baseline::{find_all as dfs_find_all, DfsOptions};
            use subgemini_netlist::Vertex;
            let dfs = dfs_find_all(
                &pattern,
                &g,
                &DfsOptions {
                    dedup_automorphs: false,
                    ..DfsOptions::default()
                },
            );
            if !dfs.budget_exhausted {
                let oracle: Vec<Vertex> = match key {
                    Vertex::Device(d) => dfs
                        .images_of_device(d)
                        .into_iter()
                        .map(Vertex::Device)
                        .collect(),
                    Vertex::Net(n) => dfs.images_of_net(n).into_iter().map(Vertex::Net).collect(),
                };
                for ki in outcome.key_images() {
                    assert!(oracle.contains(&ki), "case {case}: false key image {ki:?}");
                }
                for c in &oracle {
                    let covered = outcome.key_images().contains(c)
                        || outcome.instances.iter().any(|m| match *c {
                            Vertex::Device(d) => m.devices.contains(&d),
                            Vertex::Net(n) => m.nets.contains(&n),
                        });
                    assert!(
                        covered,
                        "case {case}: true key image {c:?} unreported and uncovered"
                    );
                }
            }
        }
        // Every reported instance independently verifies.
        for m in &outcome.instances {
            subgemini::verify_instance(&pattern, &g, m, true)
                .unwrap_or_else(|e| panic!("case {case}: invalid instance: {e}"));
        }
    }
}
