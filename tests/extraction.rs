//! Integration tests for the extraction engine (experiment E9) across
//! crates: extract, then independently validate with Gemini.

use subgemini::Extractor;
use subgemini_gemini::compare;
use subgemini_netlist::NetlistStats;
use subgemini_workloads::{cells, gen};

fn full_library_extractor() -> Extractor {
    let mut e = Extractor::new();
    for cell in cells::library() {
        e.add_cell(cell);
    }
    e
}

#[test]
fn adder_extracts_to_exactly_its_full_adders() {
    let adder = gen::ripple_adder(6);
    let (gates, report) = full_library_extractor().extract(&adder.netlist).unwrap();
    assert_eq!(report.count_of("full_adder"), 6);
    assert_eq!(report.unabsorbed_devices, 0);
    // All transistors gone; 6 composite gates remain.
    let stats = NetlistStats::of(&gates);
    assert_eq!(stats.devices, 6);
    assert!(stats.devices_by_type.contains_key("full_adder"));
    assert!(!stats.devices_by_type.contains_key("nmos"));
}

#[test]
fn shift_register_extracts_to_dffs_not_latches() {
    // Largest-first ordering must let dff claim its transistors before
    // the smaller dlatch/inv/buf patterns can eat them.
    let sreg = gen::shift_register(5);
    let (gates, report) = full_library_extractor().extract(&sreg.netlist).unwrap();
    assert_eq!(report.count_of("dff"), 5);
    assert_eq!(report.count_of("dlatch"), 0);
    assert_eq!(report.count_of("inv"), 0);
    assert_eq!(report.unabsorbed_devices, 0);
    assert_eq!(gates.device_count(), 5);
}

#[test]
fn sram_extracts_to_bit_cells() {
    let sram = gen::sram_array(3, 4);
    let (gates, report) = full_library_extractor().extract(&sram.netlist).unwrap();
    assert_eq!(report.count_of("sram6t"), 12);
    assert_eq!(report.unabsorbed_devices, 0);
    assert_eq!(gates.device_count(), 12);
    // Word/bit lines survive as shared nets.
    assert!(gates.find_net("wl0").is_some());
    assert!(gates.find_net("bl3").is_some());
}

#[test]
fn soup_extraction_covers_every_planted_gate() {
    let soup = gen::random_soup(31337, 40);
    let (gates, report) = full_library_extractor().extract(&soup.netlist).unwrap();
    // Largest-first extraction may repartition smaller cells into
    // larger-cell matches (e.g. chained planted inverters form a `buf`),
    // but every primitive transistor must be absorbed into some gate.
    assert_eq!(report.unabsorbed_devices, 0, "all transistors absorbed");
    let absorbed: usize = report
        .instances
        .iter()
        .map(|inst| inst.absorbed.len())
        .sum();
    assert_eq!(absorbed, soup.netlist.device_count());
    assert_eq!(gates.device_count(), report.instances.len());
    gates.validate().unwrap();
}

#[test]
fn extracted_instance_absorbs_correct_transistors() {
    let adder = gen::ripple_adder(2);
    let (_gates, report) = full_library_extractor().extract(&adder.netlist).unwrap();
    for inst in &report.instances {
        assert_eq!(inst.cell, "full_adder");
        assert_eq!(inst.absorbed.len(), 28);
        // All absorbed transistors share the instance prefix.
        let prefix: Vec<&str> = inst
            .absorbed
            .iter()
            .map(|n| n.split('.').next().unwrap())
            .collect();
        assert!(prefix.windows(2).all(|w| w[0] == w[1]), "{prefix:?}");
    }
}

#[test]
fn two_equal_chips_extract_to_isomorphic_gate_netlists() {
    let a = gen::ripple_adder(4);
    let b = gen::ripple_adder(4);
    let (ga, _) = full_library_extractor().extract(&a.netlist).unwrap();
    let (gb, _) = full_library_extractor().extract(&b.netlist).unwrap();
    assert!(compare(&ga, &gb).is_isomorphic());
}

#[test]
fn extraction_is_idempotent_on_gate_netlists() {
    // Running the extractor again on the gate-level output must be a
    // no-op: no transistors remain to match.
    let adder = gen::ripple_adder(3);
    let extractor = full_library_extractor();
    let (gates, _) = extractor.extract(&adder.netlist).unwrap();
    let (gates2, report2) = extractor.extract(&gates).unwrap();
    assert_eq!(report2.instances.len(), 0);
    assert_eq!(gates2.device_count(), gates.device_count());
}

#[test]
fn mixed_logic_block_extracts_fully() {
    // adder + registers + a few planted discrete gates.
    let mut chip = gen::ripple_adder(2).netlist;
    let clk = chip.net("clk");
    for i in 0..2 {
        let d = chip.net(format!("s{i}"));
        let q = chip.net(format!("q{i}"));
        subgemini_netlist::instantiate(&mut chip, &cells::dff(), &format!("r{i}"), &[d, clk, q])
            .unwrap();
    }
    let a = chip.net("q0");
    let b = chip.net("q1");
    let y = chip.net("alarm");
    subgemini_netlist::instantiate(&mut chip, &cells::nand2(), "alarm_gate", &[a, b, y]).unwrap();

    let (gates, report) = full_library_extractor().extract(&chip).unwrap();
    assert_eq!(report.count_of("full_adder"), 2);
    assert_eq!(report.count_of("dff"), 2);
    assert_eq!(report.count_of("nand2"), 1);
    assert_eq!(report.unabsorbed_devices, 0);
    assert_eq!(gates.device_count(), 5);
}

#[test]
fn unabsorbed_count_ignores_colliding_type_names() {
    // Regression: `unabsorbed_devices` used to compare device *type*
    // names against library cell names, so a main device whose type
    // merely shares a cell's name — the normal state of a partially
    // extracted netlist fed back in — was silently counted as
    // absorbed. Now only composites created by the run itself count.
    use subgemini_netlist::Netlist;
    let mut flat = Netlist::new("collide");
    for i in 0..2 {
        let a = flat.net(format!("a{i}"));
        let y = flat.net(format!("y{i}"));
        subgemini_netlist::instantiate(&mut flat, &cells::inv(), &format!("u{i}"), &[a, y])
            .unwrap();
    }
    let mut extractor = Extractor::new();
    extractor.add_cell(cells::inv());
    let (gates, report) = extractor.extract(&flat).unwrap();
    assert_eq!(report.count_of("inv"), 2);
    assert_eq!(report.unabsorbed_devices, 0);

    // Round 2, re-entrant: two fresh raw inverters alongside the two
    // round-1 composites, whose type name (`inv`) collides with the
    // library cell. The offset keeps round-2 composite names clear of
    // round 1's.
    let mut evolved = gates.clone();
    for i in 0..2 {
        let a = evolved.net(format!("b{i}"));
        let y = evolved.net(format!("z{i}"));
        subgemini_netlist::instantiate(&mut evolved, &cells::inv(), &format!("v{i}"), &[a, y])
            .unwrap();
    }
    extractor.set_composite_offset(report.instances.len());
    let (gates2, report2) = extractor.extract(&evolved).unwrap();
    assert_eq!(report2.count_of("inv"), 2, "only the raw pair matches");
    // The two round-1 composites survive and are residue of *this*
    // run; the buggy name comparison reported 0 here.
    assert_eq!(report2.unabsorbed_devices, 2, "{report2:?}");
    assert_eq!(gates2.device_count(), 4);
}

#[test]
fn extract_metrics_cell_timer_matches_outcome_total() {
    // Regression: the per-cell wall clock was read from the timer twice
    // (once for the outcome's `total_ns`, once for `match_ns`), so the
    // two reports of the same quantity always disagreed.
    let adder = gen::ripple_adder(4);
    let mut extractor = full_library_extractor();
    extractor.set_options(subgemini::MatchOptions {
        collect_metrics: true,
        ..subgemini::MatchOptions::extraction()
    });
    let (_, report) = extractor.extract(&adder.netlist).unwrap();
    let metrics = report.metrics.as_ref().expect("metrics requested");
    assert!(!metrics.cells.is_empty());
    for cm in &metrics.cells {
        let inner = cm.match_metrics.as_ref().expect("per-match metrics");
        assert_eq!(
            cm.match_ns, inner.total_ns,
            "cell {}: extractor and match report disagree on the same timer",
            cm.cell
        );
    }
    assert!(metrics.total_ns >= metrics.cells.iter().map(|c| c.match_ns).sum::<u64>());
}
