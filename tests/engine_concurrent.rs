//! Concurrent engine requests over one shared registry entry must be
//! byte-identical to serial cold runs: same instance sets, same
//! completeness, same reject tallies, same event journals. This is the
//! sharing contract of DESIGN §3g — the daemon's whole correctness
//! story is that N threads on one `Arc<CompiledCircuit>` + index
//! answer exactly what N serial CLI invocations would.

use std::thread;

use subgemini::{find_all, MatchOutcome, PrunePolicy, WorkBudget};
use subgemini_engine::{CircuitSource, Engine, FindRequest, PatternSource, RequestOptions};
use subgemini_workloads::{analog, cells, gen};

/// The metrics counters in the `reject.*` namespace, sorted by name.
fn reject_tallies(outcome: &MatchOutcome) -> Vec<(String, u64)> {
    let mut tallies: Vec<(String, u64)> = outcome
        .metrics
        .as_ref()
        .expect("metrics were requested")
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("reject."))
        .map(|(name, v)| (name.to_string(), v))
        .collect();
    tallies.sort();
    tallies
}

/// Full-strength request options for the comparison: metrics and
/// journal on, pruning off so the registry-warm runs exercise the very
/// same candidate stream as the cold baseline (warm≡cold equivalence
/// for `auto` pruning is pinned separately by the warm-start suite).
fn comparison_options() -> RequestOptions {
    RequestOptions {
        collect_metrics: true,
        trace_events: true,
        prune: PrunePolicy::Never,
        ..RequestOptions::default()
    }
}

fn assert_outcomes_identical(concurrent: &MatchOutcome, serial: &MatchOutcome) {
    assert_eq!(concurrent.instances, serial.instances);
    assert_eq!(concurrent.key, serial.key);
    assert_eq!(concurrent.phase1, serial.phase1);
    assert_eq!(concurrent.phase2, serial.phase2);
    assert_eq!(concurrent.completeness, serial.completeness);
    assert_eq!(concurrent.events, serial.events);
    assert_eq!(reject_tallies(concurrent), reject_tallies(serial));
}

#[test]
fn eight_threads_match_serial_cold_runs_exactly() {
    let main = gen::ripple_adder(6).netlist;
    let pattern = cells::full_adder();
    let engine = Engine::new();
    engine.register_circuit("chip", main.clone());

    // The serial baseline: a cold `find_all`, exactly what `subg find`
    // runs for a one-shot CLI invocation with the same flags.
    let serial = find_all(
        &pattern,
        &main,
        &comparison_options().lower(&main, None).unwrap(),
    );
    assert!(serial.count() > 0, "baseline must find instances");

    thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    engine
                        .find(&FindRequest {
                            circuit: CircuitSource::Registered("chip"),
                            pattern: PatternSource::Inline(&pattern),
                            options: comparison_options(),
                        })
                        .unwrap()
                })
            })
            .collect();
        for handle in handles {
            let resp = handle.join().unwrap();
            assert_outcomes_identical(&resp.outcome, &serial);
        }
    });
}

#[test]
fn concurrent_budgeted_requests_truncate_identically() {
    let main = gen::ripple_adder(6).netlist;
    let pattern = cells::full_adder();
    let engine = Engine::new();
    engine.register_circuit("chip", main.clone());

    // Size the effort cap off a governed-but-uncapped run (the ledger
    // only accrues under a governor) so the budget bites mid-search
    // deterministically — the ledger is candidate-vector-ordered, not
    // wall-clock-ordered.
    let probe_opts = {
        let mut o = comparison_options();
        o.budget = Some(WorkBudget::effort(u64::MAX));
        o.lower(&main, None).unwrap()
    };
    let full_effort = find_all(&pattern, &main, &probe_opts)
        .metrics
        .as_ref()
        .unwrap()
        .effort_spent;
    assert!(full_effort > 0);
    let cap = (full_effort / 3).max(1);

    let budgeted = || RequestOptions {
        budget: Some(WorkBudget::effort(cap)),
        ..comparison_options()
    };
    let serial = find_all(&pattern, &main, &budgeted().lower(&main, None).unwrap());
    assert!(
        serial.completeness.is_truncated(),
        "cap of {cap}/{full_effort} effort units must truncate"
    );

    thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    engine
                        .find(&FindRequest {
                            circuit: CircuitSource::Registered("chip"),
                            pattern: PatternSource::Inline(&pattern),
                            options: budgeted(),
                        })
                        .unwrap()
                })
            })
            .collect();
        for handle in handles {
            let resp = handle.join().unwrap();
            assert_outcomes_identical(&resp.outcome, &serial);
        }
    });
}

#[test]
fn mixed_qos_requests_coexist_on_one_entry() {
    let main = analog::mixed_signal_chip(7, 3).netlist;
    let engine = Engine::new();
    engine.register_circuit("chip", main.clone());
    let opamp = analog::two_stage_opamp();
    let inv = cells::inv();

    // Two different patterns with two different budgets/thread counts
    // on the same registry entry, racing; each must still equal its own
    // serial baseline.
    let heavy = || RequestOptions {
        threads: 2,
        ..comparison_options()
    };
    let tiny = || RequestOptions {
        budget: Some(WorkBudget::effort(1)),
        ..comparison_options()
    };
    let serial_heavy = find_all(&opamp, &main, &heavy().lower(&main, None).unwrap());
    let serial_tiny = find_all(&inv, &main, &tiny().lower(&main, None).unwrap());
    assert!(serial_tiny.completeness.is_truncated());

    thread::scope(|scope| {
        let heavy_handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    engine
                        .find(&FindRequest {
                            circuit: CircuitSource::Registered("chip"),
                            pattern: PatternSource::Inline(&opamp),
                            options: heavy(),
                        })
                        .unwrap()
                })
            })
            .collect();
        let tiny_handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    engine
                        .find(&FindRequest {
                            circuit: CircuitSource::Registered("chip"),
                            pattern: PatternSource::Inline(&inv),
                            options: tiny(),
                        })
                        .unwrap()
                })
            })
            .collect();
        for handle in heavy_handles {
            assert_outcomes_identical(&handle.join().unwrap().outcome, &serial_heavy);
        }
        for handle in tiny_handles {
            assert_outcomes_identical(&handle.join().unwrap().outcome, &serial_tiny);
        }
    });
}
