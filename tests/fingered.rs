//! Fingered-layout matching: merge_parallel as matching preprocessing.

use subgemini::Matcher;
use subgemini_netlist::{merge_parallel, Netlist};
use subgemini_workloads::cells;

/// An inverter whose transistors are split into parallel fingers, as a
/// layout extractor would produce.
fn fingered_inverter(
    chip: &mut Netlist,
    prefix: &str,
    a: subgemini_netlist::NetId,
    y: subgemini_netlist::NetId,
    fingers: usize,
) {
    let mos = chip.add_mos_types();
    let vdd = chip.net("vdd");
    let gnd = chip.net("gnd");
    chip.mark_global(vdd);
    chip.mark_global(gnd);
    for f in 0..fingers {
        // Alternate source/drain listing like real fingers do.
        let ppins = if f % 2 == 0 { [a, vdd, y] } else { [a, y, vdd] };
        let npins = if f % 2 == 0 { [a, gnd, y] } else { [a, y, gnd] };
        chip.add_device(format!("{prefix}_p{f}"), mos.pmos, &ppins)
            .unwrap();
        chip.add_device(format!("{prefix}_n{f}"), mos.nmos, &npins)
            .unwrap();
    }
}

#[test]
fn fingered_inverters_match_after_merging() {
    let mut chip = Netlist::new("fingered_chain");
    let mut prev = chip.net("in");
    for i in 0..5 {
        let next = chip.net(format!("w{i}"));
        fingered_inverter(&mut chip, &format!("u{i}"), prev, next, 3);
        prev = next;
    }
    assert_eq!(chip.device_count(), 5 * 6);

    let inv = cells::inv();
    // Unmerged: the 3-finger pull-ups give `y` degree 6, so the plain
    // inverter pattern cannot close (inverter's pull-up must be the
    // *only* pmos... actually y is a port, but the pattern pmos/nmos
    // pair maps 1:1 onto single fingers — which DOES structurally
    // match (one finger pair forms an inverter with extra fanout on
    // external nets). Pin down the behavior first:
    let unmerged = Matcher::new(&inv, &chip).find_all();
    // Each candidate key image yields at most one instance; with 3×3
    // finger pair combinations per stage overlapping heavily, the count
    // is implementation-defined but nonzero. The *merged* count is the
    // meaningful one:
    let (merged, report) = merge_parallel(&chip);
    assert_eq!(report.removed(), 5 * 4); // 3 fingers -> 1, twice per stage
    let found = Matcher::new(&inv, &merged).find_all();
    assert_eq!(found.count(), 5, "merged chain matches cleanly");
    assert!(unmerged.count() >= 5, "unmerged still finds finger pairs");
}

#[test]
fn merging_removes_fig5_ambiguity() {
    // Fig. 5's parallel pair merges to a single device, so matching a
    // single-transistor pattern no longer needs a guess.
    let mut main = Netlist::new("pair");
    let mos = main.add_mos_types();
    let (g, s, d) = (main.net("g"), main.net("s"), main.net("d"));
    main.add_device("a", mos.nmos, &[g, s, d]).unwrap();
    main.add_device("b", mos.nmos, &[g, s, d]).unwrap();

    let mut pat = Netlist::new("single");
    let mos = pat.add_mos_types();
    let (pg, ps, pd) = (pat.net("g"), pat.net("s"), pat.net("d"));
    pat.mark_port(pg);
    pat.mark_port(ps);
    pat.mark_port(pd);
    pat.add_device("m", mos.nmos, &[pg, ps, pd]).unwrap();

    let (merged, _) = merge_parallel(&main);
    let outcome = Matcher::new(&pat, &merged).find_all();
    assert_eq!(outcome.count(), 1);
    // The device-pair ambiguity is gone; only the transistor's own
    // source/drain interchangeability can still force one net guess.
    assert!(outcome.phase2.guesses <= 1, "{:?}", outcome.phase2);
    assert_eq!(outcome.phase2.backtracks, 0);

    // Compare with the unmerged pair, which needs strictly more
    // guessing (device pair plus nets).
    let unmerged = Matcher::new(&pat, &main).find_all();
    assert!(unmerged.phase2.guesses > outcome.phase2.guesses);
}

#[test]
fn merge_preserves_matching_on_unfingered_circuits() {
    // On a circuit without parallel devices, merging is the identity
    // for matching purposes.
    let chip = subgemini_workloads::gen::ripple_adder(4).netlist;
    let (merged, report) = merge_parallel(&chip);
    assert_eq!(report.removed(), 0);
    let fa = cells::full_adder();
    let a = Matcher::new(&fa, &chip).find_all();
    let b = Matcher::new(&fa, &merged).find_all();
    assert_eq!(a.count(), b.count());
}
