//! `find_all_many` must be observationally identical to per-pattern
//! `find_all` — the shared compiled main circuit and shared Phase I
//! label trace are pure caches. Also pins the cache-hit accounting:
//! a multi-pattern run compiles the main circuit exactly once.

use subgemini::{find_all, find_all_many, MatchOptions};
use subgemini_netlist::Netlist;
use subgemini_workloads::{analog, cells, gen};

fn check_equivalence(patterns: &[&Netlist], main: &Netlist, options: &MatchOptions) {
    let many = find_all_many(patterns, main, options);
    assert_eq!(many.len(), patterns.len());
    for (pattern, outcome) in patterns.iter().zip(&many) {
        let solo = find_all(pattern, main, options);
        assert_eq!(
            outcome.instances,
            solo.instances,
            "pattern {}: shared-compilation instances diverge",
            pattern.name()
        );
        assert_eq!(outcome.key, solo.key, "pattern {}", pattern.name());
        assert_eq!(outcome.phase1, solo.phase1, "pattern {}", pattern.name());
        assert_eq!(outcome.phase2, solo.phase2, "pattern {}", pattern.name());
    }
}

#[test]
fn library_survey_matches_per_pattern_runs() {
    let library = cells::library();
    let refs: Vec<&Netlist> = library.iter().collect();
    let adder = gen::ripple_adder(8);
    check_equivalence(&refs, &adder.netlist, &MatchOptions::default());
}

#[test]
fn analog_cells_match_on_mixed_signal_chip() {
    let library = analog::analog_library();
    let refs: Vec<&Netlist> = library.iter().collect();
    let chip = analog::mixed_signal_chip(7, 3);
    check_equivalence(&refs, &chip.netlist, &MatchOptions::default());
}

#[test]
fn equivalence_holds_across_option_variants() {
    let library = [cells::inv(), cells::nand2(), cells::full_adder()];
    let refs: Vec<&Netlist> = library.iter().collect();
    let adder = gen::ripple_adder(6);
    for options in [
        MatchOptions {
            threads: 1,
            ..MatchOptions::default()
        },
        MatchOptions {
            threads: 4,
            ..MatchOptions::default()
        },
        MatchOptions {
            respect_globals: false,
            ..MatchOptions::default()
        },
        MatchOptions::extraction(),
    ] {
        check_equivalence(&refs, &adder.netlist, &options);
    }
}

#[test]
fn main_is_compiled_once_across_patterns() {
    let library = [cells::inv(), cells::nand2(), cells::full_adder()];
    let refs: Vec<&Netlist> = library.iter().collect();
    let adder = gen::ripple_adder(6);
    let options = MatchOptions {
        collect_metrics: true,
        ..MatchOptions::default()
    };
    let outcomes = find_all_many(&refs, &adder.netlist, &options);
    for (i, outcome) in outcomes.iter().enumerate() {
        let m = outcome.metrics.as_ref().expect("collect_metrics was set");
        let hits = m.counters.get("compile.main_cache_hits");
        if i == 0 {
            assert_eq!(hits, 0, "first pattern pays the compile");
        } else {
            assert_eq!(hits, 1, "pattern {i} must reuse the main compilation");
        }
    }
}
